"""StorageBench: a ZippyDB-style persistent key-value store benchmark.

The paper's suite covers caching, web, ranking, bigdata, and media;
datacenter fleets also run persistent key-value storage (ZippyDB on
RocksDB).  StorageBench models that tier: a real LSM engine
(:class:`~repro.storage.lsm.LsmTree`) running over a simulated block
device (:class:`~repro.hw.blockdev.BlockDevice`), driven by a
read-dominated point-op mix with short scans — ZippyDB's measured
shape.

What makes this workload different from the CPU-only benchmarks:

* **I/O is simulated, not parameterized.**  Every block read the cache
  misses, every WAL append, every flush and compaction claims a
  queue-depth slot on the device and sleeps its service time.  Tail
  latency emerges from queueing, not from a configured distribution.
* **Background work contends with foreground work** twice: compactions
  share device slots with point reads, and their merge cost is charged
  to the simulated CPU through the harness, stealing cores from
  request processing.
* **Write stalls** propagate to the client: when L0 backs up, ``put``
  handlers block until compaction drains it, which is exactly how
  compaction interference becomes visible in foreground p99.  Stall
  durations feed an HDR-bucketed
  :class:`~repro.loadgen.recorder.LatencyRecorder`.

Batch semantics match TaoBench: one simulated request stands for
``config.batch`` production requests; device transfers scale by the
batch factor while per-op device latency is charged once (batched ops
pipeline on the device queue).
"""

from __future__ import annotations

import dataclasses
from typing import Generator, Optional

from repro.cachelib.lru import LruCache
from repro.hw.blockdev import BlockDevice, device_spec_for
from repro.loadgen.generators import Request
from repro.loadgen.recorder import LatencyRecorder
from repro.sim.rng import WeightedChoice, ZipfSampler, lognormal_sampler
from repro.storage.lsm import LsmConfig, LsmTree
from repro.uarch.characteristics import WorkloadCharacteristics
from repro.workloads.base import RunConfig, Workload, WorkloadResult
from repro.workloads.profiles import BENCHMARK_PROFILES
from repro.workloads.runner import BenchmarkHarness

#: Key popularity: ZippyDB tiers see Zipf-skewed access like TAO, but
#: flatter (storage sits below the caches that absorb the hottest keys).
KEY_SPACE = 50_000
ZIPF_SKEW = 0.9
#: Value sizes: lognormal around ZippyDB's small-value regime.
MEAN_VALUE_BYTES = 400.0
VALUE_SIZE_CV = 0.8
MIN_VALUE_BYTES = 64
MAX_VALUE_BYTES = 4096
#: Operation mix (ZippyDB-style read-dominated with short scans).
GET_FRACTION = 0.78
PUT_FRACTION = 0.19
SCAN_FRACTION = 0.03
SCAN_LENGTH = 20
#: Instruction cost per op relative to ``instructions_per_request``:
#: puts pay memtable insert + WAL framing, scans pay the iterator heap.
GET_INSTR_FRACTION = 1.0
PUT_INSTR_FRACTION = 1.3
SCAN_INSTR_FRACTION = 3.0
#: Compaction merge cost charged to the simulated CPU per input byte
#: (decode, compare, re-encode — the background CPU tax of an LSM).
#: Charged per *sim* byte and batch-multiplied by the harness, so the
#: effective production cost is this times ``config.batch``.
COMPACTION_INSTR_PER_BYTE = 0.25
#: Block cache: small relative to the data set, so the device sees a
#: steady miss stream (storage nodes are not caches).
BLOCK_CACHE_BYTES = 2 * 1024 * 1024
#: Engine geometry, scaled down with the rest of the sim-unit data set
#: so the full flush -> L0 compaction -> cascade cycle plays out inside
#: the default sub-second measurement window: the memtable rotates
#: every few dozen puts, levels are small, and tables are narrow
#: enough that one compaction merges a bounded key range.
MEMTABLE_BYTES = 16 * 1024
BASE_LEVEL_BYTES = 512 * 1024
LEVEL_SIZE_MULTIPLIER = 8
TABLE_TARGET_BYTES = 128 * 1024
#: Warm-start image: sorted-level fill fractions relative to each
#: level's target size (just under target so compaction is triggered
#: by the workload's writes, not by the prefill itself).
PREFILL_LEVEL_FILL = 0.96
#: Default batching: one simulated request = 200 production requests.
DEFAULT_BATCH = 200
#: Offered load relative to unimpeded CPU capacity: storage nodes run
#: well below saturation because the device, not the CPU, is the
#: first bottleneck.
OFFERED_FRACTION = 0.70


class StorageBench(Workload):
    """LSM storage engine benchmark over a simulated block device."""

    name = "storagebench"
    category = "storage"
    metric_name = "peak QPS under stall backpressure"

    def __init__(self, chars: Optional[WorkloadCharacteristics] = None) -> None:
        self._chars = chars or BENCHMARK_PROFILES["storagebench"]

    @property
    def characteristics(self) -> WorkloadCharacteristics:
        return self._chars

    def run(self, config: RunConfig) -> WorkloadResult:
        if config.batch == 1:
            config = dataclasses.replace(config, batch=DEFAULT_BATCH)
        harness = BenchmarkHarness(config, self._chars)
        env = harness.env
        cores = config.sku.cpu.logical_cores

        # The device class follows the SKU's storage description
        # (SKU1 ships SATA, SKU2+ NVMe), so SKU sweeps exercise the
        # storage hierarchy as well as the CPU.
        device = BlockDevice(env, device_spec_for(config.sku.storage))
        if harness.injector is not None:
            harness.injector.attach_device(device)

        block_cache = LruCache(BLOCK_CACHE_BYTES, clock=lambda: env.now)
        stall_recorder = LatencyRecorder(backend="hdr")
        # When the run carries the SLO control plane, write-stall time
        # is folded into its windowed accounting too — stalls become an
        # SLO signal, not just an iostat line.
        slo_tracker = harness.slo_tracker
        if slo_tracker is None:
            on_stall = stall_recorder.record
        else:

            def on_stall(seconds: float) -> None:
                stall_recorder.record(seconds)
                slo_tracker.add_stall(seconds)

        def compaction_cpu(merge_bytes: float) -> Generator:
            # Background compaction steals simulated cores from request
            # processing; the harness multiplies by the batch factor,
            # matching the device-side ``io_scale``.
            return harness.burst(merge_bytes * COMPACTION_INSTR_PER_BYTE)

        lsm_config = LsmConfig(
            memtable_bytes=MEMTABLE_BYTES,
            base_level_bytes=BASE_LEVEL_BYTES,
            level_size_multiplier=LEVEL_SIZE_MULTIPLIER,
            table_target_bytes=TABLE_TARGET_BYTES,
        )
        tree = LsmTree(
            env,
            device,
            block_cache,
            config=lsm_config,
            io_scale=config.batch,
            compaction_cpu=compaction_cpu,
            on_stall=on_stall,
        )
        self._prefill(tree, lsm_config)

        pool = harness.make_pool("engine", max(2, cores * 4))
        op_mix = WeightedChoice(
            ("get", "put", "scan"),
            (GET_FRACTION, PUT_FRACTION, SCAN_FRACTION),
        )
        op_rng = harness.rng.stream("ops")
        key_rng = harness.rng.stream("keys")
        size_rng = harness.rng.stream("value-sizes")
        size_sampler = lognormal_sampler(MEAN_VALUE_BYTES, VALUE_SIZE_CV)
        zipf = ZipfSampler(KEY_SPACE, ZIPF_SKEW)

        instr = self._chars.instructions_per_request
        get_instr = instr * GET_INSTR_FRACTION
        put_instr = instr * PUT_INSTR_FRACTION
        scan_instr = instr * SCAN_INSTR_FRACTION

        def handler(request: Request) -> Generator:
            op = op_mix.sample(op_rng)
            key = zipf.sample(key_rng)
            if op == "get":

                def work() -> Generator:
                    yield from tree.get(key)
                    yield from harness.burst(get_instr)

            elif op == "put":
                size = int(
                    max(
                        MIN_VALUE_BYTES,
                        min(MAX_VALUE_BYTES, size_sampler.sample(size_rng)),
                    )
                )

                def work() -> Generator:
                    yield from tree.put(key, size)
                    yield from harness.burst(put_instr)

            else:

                def work() -> Generator:
                    yield from tree.scan(key, SCAN_LENGTH)
                    yield from harness.burst(scan_instr)

            yield pool.submit(work)

        # Warmup-edge reset: the report covers the measurement window
        # only, so device/engine/stall counters restart when the
        # harness's own recorder does.
        cache_baseline = [0, 0]

        def window_reset() -> Generator:
            yield env.sleep(config.warmup_seconds)
            device.reset_stats()
            tree.stats.reset()
            stall_recorder.reset()
            cache_baseline[0] = block_cache.stats.hits
            cache_baseline[1] = block_cache.stats.lookups

        env.process(window_reset())

        offered = (
            harness.server.capacity_rps() * OFFERED_FRACTION * config.load_scale
        )
        result = harness.run_open_loop(handler, offered_rps=offered)

        device.settle()
        now = env.now
        io = device.stats
        stats = tree.stats
        window_hits = block_cache.stats.hits - cache_baseline[0]
        window_lookups = block_cache.stats.lookups - cache_baseline[1]
        extra = result.extra
        extra["offered_rps"] = offered
        extra["io_reads"] = float(io.reads)
        extra["io_writes"] = float(io.writes)
        extra["io_read_bytes"] = io.read_bytes
        extra["io_write_bytes"] = io.write_bytes
        extra["io_queue_wait_s"] = io.wait_seconds
        extra["io_mean_queue_depth"] = io.mean_queue_depth(now)
        extra["io_device_util"] = io.utilization(now, device.spec.queue_depth)
        extra["io_compaction_bytes"] = (
            stats.compaction_read_bytes + stats.compaction_write_bytes
        )
        extra["io_compactions"] = float(stats.compactions)
        extra["io_flushes"] = float(stats.flushes)
        extra["io_wal_bytes"] = stats.wal_bytes
        extra["io_cache_hit_rate"] = (
            window_hits / window_lookups if window_lookups else 0.0
        )
        extra["io_bloom_fp_rate"] = stats.bloom_fp_rate
        extra["io_stall_seconds"] = stats.stall_seconds
        extra["io_stall_events"] = float(stats.stall_events)
        extra["io_stall_p99_s"] = (
            stall_recorder.percentile(99.0) if len(stall_recorder) else 0.0
        )
        extra["lsm_gets"] = float(stats.gets)
        extra["lsm_puts"] = float(stats.puts)
        extra["lsm_scans"] = float(stats.scans)
        extra["lsm_hit_rate"] = stats.hits / stats.gets if stats.gets else 0.0
        extra["lsm_table_count"] = float(tree.table_count)
        extra["lsm_data_mb"] = tree.total_data_bytes / 1e6
        return result

    @staticmethod
    def _prefill(tree: LsmTree, lsm_config: LsmConfig) -> None:
        """Install the warm-start image a long-running node boots with.

        Deterministic and RNG-free: fixed-size values laid out so L1
        sparsely covers the whole key space and L2 densely covers the
        popular prefix.  Each level is filled to just under its target
        size so the first compactions are triggered by the measured
        write traffic.
        """
        value = int(MEAN_VALUE_BYTES)
        l1_budget = int(
            lsm_config.level_target_bytes(1) * PREFILL_LEVEL_FILL
        )
        l1_keys = max(1, l1_budget // value)
        stride = max(1, -(-KEY_SPACE // l1_keys))  # ceil: stay under budget
        tree.load_level(
            1,
            [(key, value) for key in range(1, KEY_SPACE + 1, stride)][:l1_keys],
        )
        l2_budget = int(
            lsm_config.level_target_bytes(2) * PREFILL_LEVEL_FILL
        )
        l2_keys = min(KEY_SPACE, max(1, l2_budget // value))
        tree.load_level(2, [(key, value) for key in range(1, l2_keys + 1)])
