"""Workload registry: name -> constructor, with lazy imports.

Lazy so that importing one workload module does not pull in every
other (and so the package ``__init__`` stays cycle-free).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.workloads.base import Workload


def _taobench() -> Workload:
    from repro.workloads.taobench import TaoBench

    return TaoBench()


def _feedsim() -> Workload:
    from repro.workloads.feedsim import FeedSim

    return FeedSim()


def _djangobench() -> Workload:
    from repro.workloads.djangobench import DjangoBench

    return DjangoBench()


def _mediawiki() -> Workload:
    from repro.workloads.mediawiki import MediaWiki

    return MediaWiki()


def _sparkbench() -> Workload:
    from repro.workloads.sparkbench import SparkBench

    return SparkBench()


def _videotranscode() -> Workload:
    from repro.workloads.videotranscode import VideoTranscodeBench

    return VideoTranscodeBench()


def _storagebench() -> Workload:
    from repro.workloads.storagebench import StorageBench

    return StorageBench()


def _aibench() -> Workload:
    from repro.workloads.aibench import AiBench

    return AiBench()


def _llmbench(mix: str, name: str) -> Callable[[], Workload]:
    def factory() -> Workload:
        from repro.workloads.llmbench import LlmBench

        return LlmBench(mix, name=name)

    return factory


_FACTORIES: Dict[str, Callable[[], Workload]] = {
    "taobench": _taobench,
    "feedsim": _feedsim,
    "djangobench": _djangobench,
    "mediawiki": _mediawiki,
    "sparkbench": _sparkbench,
    "videotranscode": _videotranscode,
    "storagebench": _storagebench,
    "aibench": _aibench,
    # The llmbench family: one entry per catalog mix, plus a bare
    # "llmbench" alias for the flagship chat mix.
    "llmbench": _llmbench("chat", "llmbench"),
    "llmbench-chat": _llmbench("chat", "llmbench-chat"),
    "llmbench-codegen": _llmbench("codegen", "llmbench-codegen"),
    "llmbench-rag_summarize": _llmbench(
        "rag_summarize", "llmbench-rag_summarize"
    ),
    "llmbench-long_reasoning": _llmbench(
        "long_reasoning", "llmbench-long_reasoning"
    ),
}


def get_workload(name: str) -> Workload:
    """Instantiate a DCPerf benchmark or production counterpart.

    Production counterparts use the ``<benchmark>:prod`` naming, e.g.
    ``taobench:prod`` runs the benchmark's structure with the
    production workload's calibrated profile.
    """
    if name.endswith(":prod"):
        base = name[: -len(":prod")]
        return _production_variant(base)
    try:
        return _FACTORIES[name]()
    except KeyError:
        known = ", ".join(sorted(_FACTORIES))
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None


def _production_variant(base: str) -> Workload:
    from repro.workloads.production import production_workload

    return production_workload(base)


def workload_names() -> List[str]:
    """Every registered workload name, sorted."""
    return sorted(_FACTORIES)


def dcperf_benchmarks() -> List[str]:
    """Names of the benchmarks in the DCPerf suite, in Table 1 order.

    ``storagebench`` extends the published six with the persistent
    key-value storage tier; it is scored into the suite geomean like
    the rest.
    """
    return [
        "mediawiki",
        "djangobench",
        "feedsim",
        "taobench",
        "sparkbench",
        "videotranscode",
        "storagebench",
    ]


def production_counterparts() -> List[str]:
    """Names of the production-counterpart variants."""
    return [f"{name}:prod" for name in dcperf_benchmarks()]


def llm_serving_benchmarks() -> List[str]:
    """The scored llmbench suite entries.

    ``chat`` and ``codegen`` are the two production-representative
    serving mixes scored into the default suite; ``rag_summarize`` and
    ``long_reasoning`` stay unscored probes (run them by name).
    """
    return ["llmbench-chat", "llmbench-codegen"]


def extension_benchmarks() -> List[str]:
    """Benchmarks beyond the paper's published six.

    ``aibench`` implements the paper's stated future work (Section 8:
    AI-related workloads); it is not part of the scored default suite.
    The ``llmbench`` family (token serving over continuous batching)
    extends the same future-work category — its ``chat``/``codegen``
    mixes are scored via :func:`llm_serving_benchmarks`, and the other
    catalog mixes run unscored.
    """
    return [
        "aibench",
        "llmbench",
        "llmbench-rag_summarize",
        "llmbench-long_reasoning",
    ]
