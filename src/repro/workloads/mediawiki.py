"""MediaWiki: the classic-web-application benchmark (models FB web).

Architecture (Section 3.2): Nginx + HHVM serving MediaWiki with MySQL
as the database and Memcached as the cache; Siege drives several
endpoints (a large article page, the edit page, user login, the talk
page).  All components run on one machine; the benchmark pushes CPU
utilization above 90% and measures peak requests/second plus the
latency distribution.

The model: an HHVM-style thread pool (a few threads per logical core),
an endpoint mix with per-endpoint instruction weights, a Memcached
look-up on the page path (real LRU store — repeat page views hit), and
MySQL round trips on misses and writes.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Tuple

from repro.cachelib.memcached import MemcachedServer
from repro.loadgen.generators import Handler, Request
from repro.loadgen.recorder import LatencyRecorder
from repro.sim.rng import WeightedChoice
from repro.uarch.characteristics import WorkloadCharacteristics
from repro.workloads.base import RunConfig, Workload, WorkloadResult
from repro.workloads.profiles import BENCHMARK_PROFILES
from repro.workloads.runner import BenchmarkHarness, InstanceSet

#: Endpoint mix: (weight, instruction multiplier, db round trips).
#: The article page dominates, mirroring the Siege scenario's hits on
#: the Barack Obama page; edits are rare but heavy.
ENDPOINTS: Dict[str, Tuple[float, float, int]] = {
    "page": (0.70, 1.00, 1),
    "talk": (0.12, 0.80, 1),
    "login": (0.10, 0.60, 2),
    "edit": (0.08, 2.20, 3),
}
#: MySQL round-trip latency (local instance, warm buffer pool).
DB_LATENCY_MEAN_S = 0.004
#: Page-cache entries (rendered fragments) and capacity.
PAGE_CACHE_BYTES = 4 * 1024 * 1024
PAGE_KEY_SPACE = 2000
#: Rendered-page fragment size (bytes of value per cache entry).
PAGE_FRAGMENT_REPEAT = 256
#: Offered load over capacity: Siege overdrives the server, so the
#: benchmark operates saturated (>90% CPU).
OFFERED_FRACTION = 1.45
#: HHVM worker threads per logical core.
THREADS_PER_CORE = 3


class MediaWiki(Workload):
    """Threaded HHVM web serving at saturation."""

    name = "mediawiki"
    category = "web"
    metric_name = "peak RPS"

    def __init__(self, chars: Optional[WorkloadCharacteristics] = None) -> None:
        self._chars = chars or BENCHMARK_PROFILES["mediawiki"]

    @property
    def characteristics(self) -> WorkloadCharacteristics:
        return self._chars

    def _build_handler(self, harness: BenchmarkHarness) -> Handler:
        cores = harness.sku.cpu.logical_cores
        pool = harness.make_pool("hhvm", cores * THREADS_PER_CORE)
        env = harness.env
        instances = InstanceSet(harness)
        serial_frac = self._chars.serial_fraction
        page_cache = MemcachedServer(
            capacity_bytes=PAGE_CACHE_BYTES, clock=lambda: env.now
        )
        # Pre-warm: a production HHVM/Memcached tier runs with a hot
        # page cache; fill until the byte budget is ~full.
        warm_rng = harness.rng.stream("warm")
        for rank in range(1, PAGE_KEY_SPACE + 1):
            if page_cache.cache.used_bytes >= 0.9 * PAGE_CACHE_BYTES:
                break
            endpoint = "page" if warm_rng.random() < 0.8 else "talk"
            key = f"{endpoint}:{rank}"
            page_cache.set(key, b"<html>" + key.encode() * PAGE_FRAGMENT_REPEAT)
        endpoint_rng = harness.rng.stream("endpoints")
        page_rng = harness.rng.stream("pages")
        db_rng = harness.rng.stream("db")
        instr = self._chars.instructions_per_request
        names = list(ENDPOINTS)
        endpoint_mix = WeightedChoice(names, [ENDPOINTS[n][0] for n in names])
        self._endpoint_recorders = {n: LatencyRecorder() for n in names}
        endpoint_recorders = self._endpoint_recorders

        def serve(endpoint: str) -> Generator:
            _, instr_mult, db_trips = ENDPOINTS[endpoint]
            if endpoint in ("page", "talk"):
                key = f"{endpoint}:{page_rng.randint(1, PAGE_KEY_SPACE)}"
                cached = page_cache.get(key)
                if cached is None:
                    # Render from the database and fill the cache.
                    for _ in range(db_trips):
                        yield env.sleep(
                            db_rng.expovariate(1.0 / DB_LATENCY_MEAN_S)
                        )
                    page_cache.set(key, b"<html>" + key.encode() * PAGE_FRAGMENT_REPEAT)
                    yield from harness.burst(instr * instr_mult * 1.4)
                else:
                    yield from harness.burst(instr * instr_mult * 0.9)
            else:
                for _ in range(db_trips):
                    yield env.sleep(db_rng.expovariate(1.0 / DB_LATENCY_MEAN_S))
                yield from harness.burst(instr * instr_mult)

        def handler(request: Request) -> Generator:
            endpoint = endpoint_mix.sample(endpoint_rng)
            instance = instances.pick()
            start = env.now

            def work(e: str = endpoint, i: int = instance) -> Generator:
                # Serialized slice (GC/allocator/master) first, then
                # the parallel render.
                if serial_frac > 0:
                    yield from instances.serial_section(i, instr * serial_frac)
                yield from serve(e)

            yield pool.submit(work)
            endpoint_recorders[endpoint].record(env.now - start)

        self._page_cache = page_cache
        return handler

    def run(self, config: RunConfig) -> WorkloadResult:
        harness = BenchmarkHarness(config, self._chars)
        handler = self._build_handler(harness)
        offered = (
            harness.server.capacity_rps() * OFFERED_FRACTION * config.load_scale
        )
        result = harness.run_open_loop(handler, offered_rps=offered)
        stats = self._page_cache.stats()
        result.extra["offered_rps"] = offered
        result.extra["page_cache_hit_rate"] = stats["hit_rate"]
        # Per-endpoint latency distribution (Siege reports per-URL).
        for endpoint, recorder in self._endpoint_recorders.items():
            if len(recorder):
                result.extra[f"p95_{endpoint}_seconds"] = recorder.percentile(95)
        return result
