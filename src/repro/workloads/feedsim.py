"""FeedSim: the newsfeed-ranking benchmark.

Architecture (Section 3.2): OLDISim-style request DAG — a root request
fans out to leaf tasks (feature extraction for candidate stories, each
with backend I/O), the results are aggregated and ranked, and the
response is composed with compression/serialization tax on the way out.
The client searches for the maximum request rate that keeps p95 latency
within the 500ms SLO.

The SLO — not CPU saturation — is the binding constraint, which is why
FeedSim (and its production counterpart) run at only 50-70% CPU in
Figure 9.  Two mechanisms produce that behaviour here, both real
properties of ranking systems: leaf work is heavy-tailed (feature
extraction cost varies by candidate), and the request must join on the
*slowest* leaf, so the request tail amplifies the leaf tail.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.loadgen.generators import Handler, Request
from repro.loadgen.slo import SLO, ProbeResult, SloSearchResult, find_max_load
from repro.sim.events import all_of
from repro.sim.rng import lognormal_sampler
from repro.uarch.characteristics import WorkloadCharacteristics
from repro.workloads.base import RunConfig, Workload, WorkloadResult
from repro.workloads.profiles import BENCHMARK_PROFILES
from repro.workloads.runner import BenchmarkHarness, ThreadPool

#: The paper's SLO: p95 latency under 500 ms.
FEEDSIM_SLO = SLO(percentile=95.0, latency_seconds=0.5)
#: Leaf fanout per request (Table 1: RPC fanout N(10)).
LEAF_FANOUT = 10
#: Instruction split across the request DAG.
ROOT_INSTR_FRACTION = 0.10
LEAF_INSTR_FRACTION = 0.70   # divided across the fanout
RANK_INSTR_FRACTION = 0.15
COMPOSE_INSTR_FRACTION = 0.05
#: Leaf cost variability (coefficient of variation of the lognormal).
LEAF_COST_CV = 1.35
#: Backend I/O wait per leaf (seconds, no CPU consumed): low-variance
#: lognormal — production backends are SSD-backed with tight tails, so
#: the request tail is dominated by compute variability, which scales
#: with core speed.
LEAF_IO_MEAN_S = 0.050
LEAF_IO_CV = 0.4
#: Backend congestion coupling: leaf I/O latency inflates with server
#: occupancy (the backend tier shares the box and the kernel in the
#: single-machine benchmark, and is co-loaded in production).  This is
#: the mechanism that makes the 500ms SLO bind at 50-70% CPU rather
#: than at saturation (Figure 9).
LEAF_IO_CONGESTION = 3.0
#: Frozen distribution parameterisations (draw-identical to the
#: per-call function form; the SLO search re-enters the handler ~10x
#: per run, so the per-draw parameter derivation added up).
_LEAF_IO_SAMPLER = lognormal_sampler(LEAF_IO_MEAN_S, LEAF_IO_CV)
_LEAF_COST_SAMPLER = lognormal_sampler(1.0, LEAF_COST_CV)

#: Memoized SLO-search operating points — the TaoBench warm-fill memo
#: pattern applied to FeedSim's setup phase.  The search is FeedSim's
#: deterministic "tree build": ~10 probe runs, each on a fresh harness
#: whose RNG streams derive solely from ``config.seed``, so the
#: converged operating point is a pure function of (profile, config).
#: TaoBench keys its memo on the RNG entry state because its fill
#: advances a live stream; here every probe *re-derives* its streams
#: from the config, so the config itself pins the RNG entry state and
#: the final measurement run (again a fresh harness) is byte-identical
#: whether the search ran or replayed.  Keyed only for the
#: module-persistent profiles, whose identity is stable for the life
#: of the process; bounded like the TaoBench memo.
_SEARCH_MEMO: dict = {}
_SEARCH_MEMO_MAX = 4


class FeedSim(Workload):
    """Newsfeed ranking under a tail-latency SLO."""

    name = "feedsim"
    category = "ranking"
    metric_name = "RPS under p95<500ms SLO"

    def __init__(self, chars: Optional[WorkloadCharacteristics] = None) -> None:
        self._chars = chars or BENCHMARK_PROFILES["feedsim"]

    @property
    def characteristics(self) -> WorkloadCharacteristics:
        return self._chars

    def _build_handler(self, harness: BenchmarkHarness) -> Handler:
        cores = harness.sku.cpu.logical_cores
        # OLDISim worker pool: thread-to-core ratio N(10).
        pool: ThreadPool = harness.make_pool("workers", cores * 4)
        instr = self._chars.instructions_per_request
        mean_leaf_instr = instr * LEAF_INSTR_FRACTION / LEAF_FANOUT
        leaf_rng = harness.rng.stream("leaf-cost")
        io_rng = harness.rng.stream("leaf-io")
        env = harness.env

        sched = harness.scheduler

        def leaf_work(cost_scale: float) -> Generator:
            # Backend I/O first (no CPU), then feature extraction.  The
            # I/O wait stretches with core occupancy: the backend is
            # co-loaded with the serving tier.
            occupancy = sched.cores.count / sched.logical_cores
            congestion = 1.0 + LEAF_IO_CONGESTION * occupancy * occupancy
            yield env.sleep(_LEAF_IO_SAMPLER.sample(io_rng) * congestion)
            yield from harness.burst(mean_leaf_instr * cost_scale)

        def handler(request: Request) -> Generator:
            # Root: parse + candidate selection.
            yield pool.submit(
                lambda: harness.burst(instr * ROOT_INSTR_FRACTION)
            )
            # Fanout: leaves run in parallel; the request joins on the
            # slowest one, amplifying the leaf tail.
            leaf_events = []
            for _ in range(LEAF_FANOUT):
                scale = _LEAF_COST_SAMPLER.sample(leaf_rng)
                leaf_events.append(
                    pool.submit(lambda s=scale: leaf_work(s))
                )
            yield all_of(env, leaf_events)
            # Ranking + response composition (compression tax).
            yield pool.submit(lambda: harness.burst(instr * RANK_INSTR_FRACTION))
            yield pool.submit(
                lambda: harness.burst(instr * COMPOSE_INSTR_FRACTION)
            )

        return handler

    def _probe(self, config: RunConfig, offered_rps: float) -> ProbeResult:
        """One trial at a fixed offered load."""
        harness = BenchmarkHarness(config, self._chars)
        handler = self._build_handler(harness)
        result = harness.run_open_loop(handler, offered_rps=offered_rps)
        p95 = result.latency.get("p95", float("inf"))
        return ProbeResult(
            offered_rps=offered_rps,
            achieved_rps=result.throughput_rps,
            latency_at_percentile=p95,
            error_rate=result.latency.get("errors", 0)
            / max(1, result.latency.get("count", 1)),
            cpu_util=result.cpu_util,
        )

    def search(self, config: RunConfig) -> SloSearchResult:
        """Find max load under the SLO (the FeedSim methodology)."""
        harness = BenchmarkHarness(config, self._chars)
        capacity = harness.server.capacity_rps()
        return find_max_load(
            probe=lambda rate: self._probe(config, rate),
            slo=FEEDSIM_SLO,
            low_rps=capacity * 0.20,
            high_rps=capacity * 1.05 * config.load_scale,
            tolerance=0.04,
        )

    def _memo_key(self, config: RunConfig):
        """Memo key, or None when the profile is not module-persistent.

        A caller-supplied characteristics object may be mutated or
        garbage-collected between runs, so only the registry profiles
        (whose identity is stable) are safe to key by name; ``config``
        is a frozen, hashable dataclass and pins everything else the
        search depends on (seed, SKU, kernel, window, load scale).
        """
        from repro.workloads.profiles import PRODUCTION_PROFILES

        chars = self._chars
        if chars is BENCHMARK_PROFILES.get("feedsim") or chars is (
            PRODUCTION_PROFILES.get("ranking-prod")
        ):
            return (chars.name, config)
        return None

    def _operating_point(self, config: RunConfig):
        """(operating_rps, slo_met, probes_run, p95) — search or replay."""
        key = self._memo_key(config)
        if key is not None:
            memo = _SEARCH_MEMO.get(key)
            if memo is not None:
                return memo
        try:
            search = self.search(config)
            point = (
                search.max_rps,
                True,
                float(search.probes_run),
                search.probe.latency_at_percentile,
            )
        except ValueError:
            # The SLO cannot be met at any load: on a pathologically
            # slow CPU the request's own critical path exceeds 500ms.
            # The benchmark still reports a (floor) throughput — the
            # machine serves traffic, it just always violates the SLO.
            harness = BenchmarkHarness(config, self._chars)
            point = (harness.server.capacity_rps() * 0.05, False, None, None)
        if key is not None:
            if len(_SEARCH_MEMO) >= _SEARCH_MEMO_MAX:
                _SEARCH_MEMO.clear()
            _SEARCH_MEMO[key] = point
        return point

    def run(self, config: RunConfig) -> WorkloadResult:
        operating_rps, slo_met, probes_run, search_p95 = self._operating_point(
            config
        )
        # Re-run at the converged operating point for full metrics.
        harness = BenchmarkHarness(config, self._chars)
        handler = self._build_handler(harness)
        result = harness.run_open_loop(handler, offered_rps=operating_rps)
        result.extra["slo_met"] = float(slo_met)
        result.extra["slo_max_rps"] = operating_rps
        if probes_run is not None:
            result.extra["slo_probes"] = probes_run
            result.extra["slo_p95_seconds"] = search_p95
        if result.throughput_rps <= 0:
            result.throughput_rps = operating_rps * 0.5
        return result
