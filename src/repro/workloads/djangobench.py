"""DjangoBench: the Instagram-style web benchmark.

Architecture (Section 3.2): Python + Django behind UWSGI, which — in
contrast to MediaWiki's threading — uses a *multi-process* model with
one worker process per logical CPU core, the key to scaling Python on
many-core machines.  Apache Cassandra is the database and Memcached the
cache; the load generator visits feed, timeline, seen, and inbox
endpoints.

The model: exactly one single-threaded worker per logical core (a
process can serve one request at a time; no GIL sharing across
requests), per-endpoint instruction weights, Cassandra round trips, and
a Memcached session/object cache.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Tuple

from repro.cachelib.memcached import MemcachedServer
from repro.loadgen.generators import Handler, Request
from repro.loadgen.recorder import LatencyRecorder
from repro.sim.rng import WeightedChoice
from repro.uarch.characteristics import WorkloadCharacteristics
from repro.workloads.base import RunConfig, Workload, WorkloadResult
from repro.workloads.profiles import BENCHMARK_PROFILES
from repro.workloads.runner import BenchmarkHarness, InstanceSet

#: Endpoint mix: (weight, instruction multiplier, cassandra trips).
ENDPOINTS: Dict[str, Tuple[float, float, int]] = {
    "feed": (0.45, 1.40, 2),
    "timeline": (0.25, 1.00, 2),
    "seen": (0.20, 0.30, 1),
    "inbox": (0.10, 0.80, 1),
}
#: Cassandra read latency (replica on another host).
CASSANDRA_LATENCY_MEAN_S = 0.003
#: Object-cache capacity and key space.
OBJECT_CACHE_BYTES = 8 * 1024 * 1024
OBJECT_KEY_SPACE = 5_000
#: UWSGI queues requests ahead of busy workers; the benchmark drives
#: the server to saturation (Figure 9: 95% utilization).
OFFERED_FRACTION = 1.55


class DjangoBench(Workload):
    """Multi-process Django/UWSGI web serving."""

    name = "djangobench"
    category = "web"
    metric_name = "peak RPS"

    def __init__(self, chars: Optional[WorkloadCharacteristics] = None) -> None:
        self._chars = chars or BENCHMARK_PROFILES["djangobench"]

    @property
    def characteristics(self) -> WorkloadCharacteristics:
        return self._chars

    def _build_handler(self, harness: BenchmarkHarness) -> Handler:
        cores = harness.sku.cpu.logical_cores
        # The UWSGI architecture: one worker process per logical core,
        # each running two request threads so Cassandra waits overlap.
        pool = harness.make_pool("uwsgi-workers", cores * 2)
        env = harness.env
        instances = InstanceSet(harness)
        serial_frac = self._chars.serial_fraction
        object_cache = MemcachedServer(
            capacity_bytes=OBJECT_CACHE_BYTES, clock=lambda: env.now
        )
        # Pre-warm ~70% of the object key space (steady-state cache).
        for rank in range(1, int(OBJECT_KEY_SPACE * 0.7) + 1):
            key = f"obj:{rank}"
            object_cache.set(key, key.encode() * 32)
        endpoint_rng = harness.rng.stream("endpoints")
        object_rng = harness.rng.stream("objects")
        db_rng = harness.rng.stream("cassandra")
        instr = self._chars.instructions_per_request
        names = list(ENDPOINTS)
        endpoint_mix = WeightedChoice(names, [ENDPOINTS[n][0] for n in names])
        self._endpoint_recorders = {n: LatencyRecorder() for n in names}
        endpoint_recorders = self._endpoint_recorders

        def serve(endpoint: str) -> Generator:
            _, instr_mult, db_trips = ENDPOINTS[endpoint]
            key = f"obj:{object_rng.randint(1, OBJECT_KEY_SPACE)}"
            cached = object_cache.get(key)
            trips = db_trips if cached is None else max(0, db_trips - 1)
            for _ in range(trips):
                yield env.sleep(
                    db_rng.expovariate(1.0 / CASSANDRA_LATENCY_MEAN_S)
                )
            if cached is None:
                object_cache.set(key, key.encode() * 32)
            yield from harness.burst(instr * instr_mult)

        def handler(request: Request) -> Generator:
            endpoint = endpoint_mix.sample(endpoint_rng)
            instance = instances.pick()
            start = env.now

            def work(e: str = endpoint, i: int = instance) -> Generator:
                if serial_frac > 0:
                    yield from instances.serial_section(i, instr * serial_frac)
                yield from serve(e)

            yield pool.submit(work)
            endpoint_recorders[endpoint].record(env.now - start)

        self._object_cache = object_cache
        return handler

    def run(self, config: RunConfig) -> WorkloadResult:
        harness = BenchmarkHarness(config, self._chars)
        handler = self._build_handler(harness)
        offered = (
            harness.server.capacity_rps() * OFFERED_FRACTION * config.load_scale
        )
        result = harness.run_open_loop(handler, offered_rps=offered)
        result.extra["offered_rps"] = offered
        result.extra["object_cache_hit_rate"] = self._object_cache.stats()["hit_rate"]
        result.extra["worker_processes"] = float(config.sku.cpu.logical_cores)
        # Per-endpoint latency distribution (feed/timeline/seen/inbox).
        for endpoint, recorder in self._endpoint_recorders.items():
            if len(recorder):
                result.extra[f"p95_{endpoint}_seconds"] = recorder.percentile(95)
        return result
