"""Workload base types: run configuration, results, and the ABC."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.faults.control import DISABLED_CONTROL, SloControlPolicy
from repro.faults.resilience import DISABLED_POLICY, ResiliencePolicy
from repro.faults.schedule import EMPTY_SCHEDULE, FaultSchedule
from repro.hw.sku import ServerSku, get_sku
from repro.oskernel.kernel import KernelVersion, get_kernel
from repro.uarch.characteristics import WorkloadCharacteristics
from repro.uarch.projection import SteadyState


@dataclass(frozen=True)
class RunConfig:
    """How to run a benchmark.

    ``load_scale`` multiplies the workload's default offered load
    (1.0 = the load that saturates the benchmark's target operating
    point); ``batch`` lets one simulated request represent ``batch``
    production requests for very-high-RPS workloads.

    ``faults`` is the deterministic fault schedule the harness replays
    during the measurement window and ``resilience`` the client-side
    policy (deadlines, retries, breaker, hedging) active for the run;
    both default to no-op so fault-free runs are untouched.
    ``fault_scenario`` carries the named scenario (if any) for
    reporting — the schedule/policy pair are what actually executes.

    ``slo_control`` opts the run into the continuous in-run SLO
    control plane: a windowed percentile tracker plus the SLO-triggered
    behaviors it drives (load shedding, per-instance admission caps,
    brownout relief — see :mod:`repro.faults.control`).  It defaults to
    disabled so the exact-backend golden path is untouched; control
    runs never stop early (shedding makes their windows deliberately
    non-stationary, like fault runs).

    ``shards``/``shard_index`` implement intra-run sharding: a run with
    ``shards=N`` is executed as N statistically-independent shard
    environments, each carrying ``shard_index in [0, N)``, a seed
    derived from the run seed (:func:`repro.exec.spec.shard_seed`), and
    ``load_scale / N`` of the offered rate; the executor merges the N
    shard results into one report.  ``shard_index == -1`` marks the
    parent (unsharded or merged) view.  A config with ``shards=1`` is
    byte-identical to one built before sharding existed.

    ``early_stop`` lets the harness end the measurement window early
    once the windowed latency means have converged (a deterministic,
    completion-count-based test — see
    :class:`~repro.workloads.runner.ConvergenceMonitor`).  It defaults
    to off so directly constructed configs reproduce the full fixed
    window byte-for-byte; the CLI and sweep tools enable it unless
    ``--no-early-stop`` is given.  Fault-injection runs never stop
    early: their windows are deliberately non-stationary.
    """

    sku_name: str = "SKU2"
    kernel_version: str = "6.9"
    seed: int = 7
    warmup_seconds: float = 0.5
    measure_seconds: float = 2.0
    load_scale: float = 1.0
    batch: int = 1
    faults: FaultSchedule = EMPTY_SCHEDULE
    resilience: ResiliencePolicy = DISABLED_POLICY
    fault_scenario: str = ""
    slo_control: SloControlPolicy = DISABLED_CONTROL
    early_stop: bool = False
    shards: int = 1
    shard_index: int = -1

    def __post_init__(self) -> None:
        if self.warmup_seconds < 0 or self.measure_seconds <= 0:
            raise ValueError("invalid measurement window")
        if self.load_scale <= 0:
            raise ValueError("load_scale must be positive")
        if self.batch < 1:
            raise ValueError("batch must be >= 1")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if not -1 <= self.shard_index < self.shards:
            raise ValueError(
                f"shard_index {self.shard_index} out of range for "
                f"{self.shards} shard(s)"
            )

    @property
    def sku(self) -> ServerSku:
        return get_sku(self.sku_name)

    @property
    def kernel(self) -> KernelVersion:
        return get_kernel(self.kernel_version)


@dataclass
class WorkloadResult:
    """Everything one benchmark run reports."""

    workload: str
    sku: str
    kernel: str
    throughput_rps: float
    latency: Dict[str, float]
    cpu_util: float
    kernel_util: float
    scaling_efficiency: float
    steady: Optional[SteadyState] = None
    extra: Dict[str, float] = field(default_factory=dict)
    #: Time series of (sim seconds, cpu utilization) samples over the
    #: measurement window — what the paper's time-series hooks record.
    timeline: list = field(default_factory=list)

    @property
    def power_watts(self) -> float:
        if self.steady is None:
            raise ValueError("no steady-state attached to this result")
        return self.steady.power_watts

    def perf_per_watt(self) -> float:
        """Throughput per watt, the Figure 14 metric."""
        return self.throughput_rps / self.power_watts

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "workload": self.workload,
            "sku": self.sku,
            "kernel": self.kernel,
            "throughput_rps": self.throughput_rps,
            "latency": dict(self.latency),
            "cpu_util": self.cpu_util,
            "kernel_util": self.kernel_util,
            "scaling_efficiency": self.scaling_efficiency,
            "extra": dict(self.extra),
            "timeline": [list(point) for point in self.timeline],
        }
        if self.steady is not None:
            out["uarch"] = {
                "ipc_per_physical_core": self.steady.ipc_per_physical_core,
                "l1i_mpki": self.steady.misses.l1i_mpki,
                "llc_mpki": self.steady.misses.llc_mpki,
                "membw_gbps": self.steady.memory_bandwidth_gbps,
                "freq_ghz": self.steady.effective_freq_ghz,
                "tmam": self.steady.tmam.as_dict(),
                "power": self.steady.power.as_dict(),
                "power_watts": self.steady.power_watts,
            }
        return out


class Workload(abc.ABC):
    """A runnable workload model."""

    #: Unique name, e.g. ``"taobench"``.
    name: str = "abstract"
    #: Table 1 category: web / ranking / caching / bigdata / media.
    category: str = "abstract"
    #: What the benchmark's headline number means, e.g. ``"peak RPS"``.
    metric_name: str = "requests/s"

    @property
    @abc.abstractmethod
    def characteristics(self) -> WorkloadCharacteristics:
        """The calibrated characteristics vector."""

    @abc.abstractmethod
    def run(self, config: RunConfig) -> WorkloadResult:
        """Execute the benchmark and report results."""

    def describe(self) -> Dict[str, object]:
        chars = self.characteristics
        return {
            "name": self.name,
            "category": self.category,
            "metric": self.metric_name,
            "instructions_per_request": chars.instructions_per_request,
            "thread_core_ratio": chars.thread_core_ratio,
            "rpc_fanout": chars.rpc_fanout,
            "tax_fraction": chars.tax_profile.tax_fraction,
        }
