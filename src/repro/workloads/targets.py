"""Published per-workload profiles from the paper's figures.

One row per workload: the SKU2 columns of Figure 4 (TMAM), Figure 6
(IPC), Figure 7 (memory bandwidth), Figure 8 (L1I MPKI), Figure 9
(CPU utilization total/system), and Figure 11 (frequency).  These are
the calibration inputs (see :mod:`repro.uarch.calibrate`) and the
reference values EXPERIMENTS.md compares against.

TMAM retiring values are computed as ``100 - frontend - badspec -
backend`` so each bar sums to exactly 100 (figure labels carry rounding
noise).
"""

from __future__ import annotations

from typing import Dict, List

from repro.uarch.calibrate import FidelityTargets


def _targets(
    name: str,
    category: str,
    fe: float,
    bs: float,
    be: float,
    l1i: float,
    membw: float,
    util: float,
    sys: float,
    freq: float,
    ipc: float,
    platform_activity: float = 0.0,
) -> FidelityTargets:
    ret = 100.0 - fe - bs - be
    return FidelityTargets(
        name=name,
        category=category,
        frontend=fe / 100.0,
        bad_speculation=bs / 100.0,
        backend=be / 100.0,
        retiring=ret / 100.0,
        l1i_mpki=l1i,
        membw_gbps=membw,
        cpu_util=util / 100.0,
        sys_util=sys / 100.0,
        freq_ghz=freq,
        ipc=ipc,
        platform_activity=platform_activity,
    )


# --- production workloads (the "(prod)" bars) --------------------------------
PRODUCTION_TARGETS: Dict[str, FidelityTargets] = {
    "cache-prod": _targets(
        "cache-prod", "caching", fe=41, bs=6, be=22, l1i=56, membw=29,
        util=90, sys=30, freq=2.00, ipc=1.2, platform_activity=0.47,
    ),
    "ranking-prod": _targets(
        "ranking-prod", "ranking", fe=29, bs=13, be=13, l1i=17, membw=31,
        util=61, sys=10, freq=2.10, ipc=1.8, platform_activity=0.45,
    ),
    "igweb-prod": _targets(
        "igweb-prod", "web", fe=48, bs=9, be=18, l1i=55, membw=19,
        util=98, sys=13, freq=1.92, ipc=1.0, platform_activity=0.45,
    ),
    "fbweb-prod": _targets(
        "fbweb-prod", "web", fe=39, bs=9, be=23, l1i=39, membw=36,
        util=99, sys=11, freq=1.90, ipc=1.2, platform_activity=0.50,
    ),
    "spark-prod": _targets(
        "spark-prod", "bigdata", fe=24, bs=11, be=2, l1i=7, membw=36,
        util=70, sys=9, freq=1.80, ipc=2.6, platform_activity=0.42,
    ),
    "video-prod": _targets(
        "video-prod", "media", fe=18, bs=8, be=18, l1i=9, membw=22,
        util=97, sys=3, freq=1.95, ipc=2.2, platform_activity=0.40,
    ),
    # ZippyDB-style persistent key-value store: RocksDB behind a
    # Thrift-ish RPC layer.  Backend-bound (block reads miss the CPU
    # caches), warm instruction footprint between the cache and web
    # extremes, and a visible kernel share from the I/O submission path.
    "storage-prod": _targets(
        "storage-prod", "storage", fe=32, bs=6, be=32, l1i=34, membw=28,
        util=82, sys=22, freq=1.98, ipc=1.1, platform_activity=0.45,
    ),
}

# --- DCPerf benchmarks --------------------------------------------------------
BENCHMARK_TARGETS: Dict[str, FidelityTargets] = {
    "taobench": _targets(
        "taobench", "caching", fe=33, bs=5, be=31, l1i=54, membw=17,
        util=86, sys=31, freq=2.00, ipc=1.1, platform_activity=0.05,
    ),
    "feedsim": _targets(
        "feedsim", "ranking", fe=33, bs=12, be=7, l1i=14, membw=30,
        util=64, sys=1, freq=2.01, ipc=1.8, platform_activity=0.0,
    ),
    "djangobench": _targets(
        "djangobench", "web", fe=46, bs=10, be=5, l1i=46, membw=21,
        util=95, sys=3, freq=1.90, ipc=1.4, platform_activity=0.07,
    ),
    "mediawiki": _targets(
        "mediawiki", "web", fe=36, bs=10, be=18, l1i=31, membw=29,
        util=95, sys=10, freq=1.91, ipc=1.4, platform_activity=0.0,
    ),
    "sparkbench": _targets(
        "sparkbench", "bigdata", fe=21, bs=8, be=3, l1i=12, membw=33,
        util=73, sys=17, freq=1.80, ipc=2.6, platform_activity=0.13,
    ),
    "videotranscode": _targets(
        "videotranscode", "media", fe=16, bs=8, be=17, l1i=10, membw=20,
        util=98, sys=2, freq=1.96, ipc=2.3, platform_activity=0.0,
    ),
    # StorageBench models ZippyDB's LSM engine with synthetic clients:
    # the same backend-bound shape as storage-prod, slightly lighter on
    # frontend stalls (no production RPC soup) and kernel time.
    "storagebench": _targets(
        "storagebench", "storage", fe=30, bs=6, be=35, l1i=30, membw=25,
        util=75, sys=20, freq=2.00, ipc=1.0, platform_activity=0.05,
    ),
    # LlmBench models CPU-hosted LLM token serving: a compact inference
    # loop (tiny code footprint, few context switches) that streams
    # weights and KV cache every decode step — backend/memory-bandwidth
    # bound with heavy vector issue holding clocks down.
    "llmbench": _targets(
        "llmbench", "ai-inference", fe=12, bs=4, be=48, l1i=5, membw=48,
        util=72, sys=8, freq=1.85, ipc=1.3, platform_activity=0.05,
    ),
}

# --- SPEC CPU 2017 (int rate subset the paper uses) --------------------------
SPEC2017_TARGETS: Dict[str, FidelityTargets] = {
    "500.perlbench": _targets(
        "500.perlbench", "spec", fe=29, bs=3, be=19, l1i=3, membw=16,
        util=100, sys=0.5, freq=2.07, ipc=2.0, platform_activity=0.30,
    ),
    "502.gcc": _targets(
        "502.gcc", "spec", fe=29, bs=9, be=16, l1i=9, membw=43,
        util=100, sys=0.5, freq=2.08, ipc=1.6, platform_activity=0.30,
    ),
    "505.mcf": _targets(
        "505.mcf", "spec", fe=13, bs=11, be=59, l1i=2, membw=68,
        util=100, sys=0.5, freq=2.00, ipc=0.6, platform_activity=0.30,
    ),
    "520.omnetpp": _targets(
        "520.omnetpp", "spec", fe=15, bs=7, be=56, l1i=4, membw=50,
        util=100, sys=0.5, freq=2.17, ipc=0.8, platform_activity=0.30,
    ),
    "523.xalancbmk": _targets(
        "523.xalancbmk", "spec", fe=21, bs=2, be=43, l1i=4, membw=18,
        util=100, sys=0.5, freq=2.16, ipc=1.5, platform_activity=0.30,
    ),
    "525.x264": _targets(
        "525.x264", "spec", fe=8, bs=4, be=9, l1i=4, membw=5,
        util=100, sys=0.5, freq=2.14, ipc=3.3, platform_activity=0.30,
    ),
    "531.deepsjeng": _targets(
        "531.deepsjeng", "spec", fe=28, bs=11, be=9, l1i=1, membw=8,
        util=100, sys=0.5, freq=2.13, ipc=2.1, platform_activity=0.30,
    ),
    "541.leela": _targets(
        "541.leela", "spec", fe=22, bs=20, be=10, l1i=1, membw=3,
        util=100, sys=0.5, freq=2.15, ipc=1.9, platform_activity=0.30,
    ),
    "548.exchange2": _targets(
        "548.exchange2", "spec", fe=23, bs=7, be=3, l1i=2, membw=0.3,
        util=100, sys=0.5, freq=2.08, ipc=2.5, platform_activity=0.30,
    ),
    "557.xz": _targets(
        "557.xz", "spec", fe=14, bs=17, be=23, l1i=2, membw=21,
        util=100, sys=0.5, freq=2.19, ipc=1.8, platform_activity=0.30,
    ),
}

# --- SPEC CPU 2006 (int subset; the paper used a subset chosen to best
# represent Meta's workloads before DCPerf existed).  The paper gives no
# per-benchmark 2006 profiles, so these are representative values for
# the named benchmarks with a more memory-bound mix than the 2017
# subset — the property that makes the 2006 suite scale slightly worse
# on bandwidth-rich many-core SKUs (Figure 2: 5.42x vs 5.75x on SKU4).
SPEC2006_TARGETS: Dict[str, FidelityTargets] = {
    "400.perlbench": _targets(
        "400.perlbench", "spec", fe=27, bs=5, be=22, l1i=4, membw=14,
        util=100, sys=0.5, freq=2.08, ipc=1.9, platform_activity=0.30,
    ),
    "403.gcc": _targets(
        "403.gcc", "spec", fe=26, bs=8, be=24, l1i=8, membw=48,
        util=100, sys=0.5, freq=2.07, ipc=1.5, platform_activity=0.30,
    ),
    "429.mcf": _targets(
        "429.mcf", "spec", fe=10, bs=9, be=64, l1i=2, membw=66,
        util=100, sys=0.5, freq=2.00, ipc=0.5, platform_activity=0.30,
    ),
    "445.gobmk": _targets(
        "445.gobmk", "spec", fe=24, bs=16, be=12, l1i=3, membw=9,
        util=100, sys=0.5, freq=2.12, ipc=1.7, platform_activity=0.30,
    ),
    "456.hmmer": _targets(
        "456.hmmer", "spec", fe=8, bs=3, be=18, l1i=1, membw=11,
        util=100, sys=0.5, freq=2.13, ipc=2.6, platform_activity=0.30,
    ),
    "458.sjeng": _targets(
        "458.sjeng", "spec", fe=25, bs=14, be=10, l1i=2, membw=6,
        util=100, sys=0.5, freq=2.14, ipc=1.9, platform_activity=0.30,
    ),
    "462.libquantum": _targets(
        "462.libquantum", "spec", fe=5, bs=2, be=62, l1i=1, membw=74,
        util=100, sys=0.5, freq=2.05, ipc=1.1, platform_activity=0.30,
    ),
    "464.h264ref": _targets(
        "464.h264ref", "spec", fe=10, bs=5, be=12, l1i=3, membw=12,
        util=100, sys=0.5, freq=2.13, ipc=2.8, platform_activity=0.30,
    ),
    "471.omnetpp": _targets(
        "471.omnetpp", "spec", fe=14, bs=8, be=55, l1i=4, membw=52,
        util=100, sys=0.5, freq=2.15, ipc=0.8, platform_activity=0.30,
    ),
    "483.xalancbmk": _targets(
        "483.xalancbmk", "spec", fe=20, bs=3, be=45, l1i=5, membw=22,
        util=100, sys=0.5, freq=2.14, ipc=1.4, platform_activity=0.30,
    ),
}

#: Figure 2 — suite performance normalized to SKU1 (paper reference).
FIG2_SKU_PERFORMANCE: Dict[str, List[float]] = {
    # SKU1, SKU2, SKU3, SKU4
    "production": [1.00, 1.25, 1.74, 4.50],
    "dcperf": [1.00, 1.24, 1.69, 4.65],
    "spec2006": [1.00, 1.24, 1.67, 5.42],
    "spec2017": [1.00, 1.32, 1.90, 5.75],
}

#: Figure 3 — projection error vs production, per SKU (percent).
FIG3_PROJECTION_ERROR: Dict[str, List[float]] = {
    "dcperf": [0.0, -0.8, -2.9, 3.3],
    "spec2006": [0.0, -0.8, -4.0, 20.4],
    "spec2017": [0.0, 5.6, 9.2, 27.8],
}

#: Figure 5 — average TMAM (percent of slots): FE / BadSpec / BE / Ret.
FIG5_AVG_STALLS: Dict[str, List[float]] = {
    "prod": [36, 9, 16, 39],
    "dcperf": [34, 9, 13, 45],
    "spec2017": [20, 9, 24, 47],
}

#: Figure 10 — power breakdown (percent of designed power):
#: core / soc / dram / other.
FIG10_POWER: Dict[str, List[float]] = {
    "fbweb-prod": [34, 28, 10, 21],
    "mediawiki": [40, 22, 10, 13],
    "igweb-prod": [33, 30, 11, 20],
    "djangobench": [40, 21, 9, 14],
    "ranking-prod": [31, 29, 9, 20],
    "feedsim": [38, 23, 10, 11],
    "video1-prod": [26, 26, 12, 18],
    "videobench1": [31, 26, 11, 13],
    "video2-prod": [32, 22, 10, 18],
    "videobench2": [40, 22, 9, 15],
    "video3-prod": [36, 19, 8, 19],
    "videobench3": [42, 19, 8, 15],
    "average-prod": [32, 26, 10, 19],
    "average-dcperf": [39, 22, 10, 14],
    "average-spec": [34, 20, 7, 17],
}

#: Figure 14 — Perf/Watt normalized to SKU1.
FIG14_PERF_PER_WATT: Dict[str, Dict[str, float]] = {
    "SKU4": {
        "taobench": 1.7, "feedsim": 2.4, "djangobench": 2.0,
        "mediawiki": 1.9, "sparkbench": 1.4, "dcperf": 1.8, "spec2017": 1.3,
    },
    "SKU-A": {
        "taobench": 1.6, "feedsim": 2.8, "djangobench": 2.7,
        "mediawiki": 1.9, "sparkbench": 2.7, "dcperf": 2.3, "spec2017": 1.8,
    },
    "SKU-B": {
        "taobench": 0.9, "feedsim": 1.9, "djangobench": 0.3,
        "mediawiki": 0.7, "sparkbench": 0.8, "dcperf": 0.8, "spec2017": 1.6,
    },
}

#: Figure 15 — vendor cache-replacement optimization deltas (percent).
FIG15_CACHE_OPT: Dict[str, Dict[str, float]] = {
    "fbweb-prod": {
        "app_perf": 2.9, "gips": 2.4, "ipc": 2.2,
        "l1i_miss": -36.0, "l2_miss": -28.0, "llc_miss": -14.4,
        "membw": -9.9,
    },
    "mediawiki": {
        "app_perf": 3.5, "gips": 3.0, "ipc": 1.9,
        "l1i_miss": -36.0, "l2_miss": -28.0, "llc_miss": -10.2,
        "membw": -6.7,
    },
}

#: Figure 16 — TaoBench relative performance (percent of 176-core/6.4).
FIG16_KERNEL_SCALING: Dict[str, Dict[str, float]] = {
    "6.4": {"SKU4": 100.0, "SKU-384": 162.0},
    "6.9": {"SKU4": 103.0, "SKU-384": 249.0},
}

#: Table 1 — workload category structure (orders of magnitude).
TABLE1_STRUCTURE: Dict[str, Dict[str, object]] = {
    "web": {
        "benchmarks": ["mediawiki", "djangobench"],
        "metric": "peak RPS",
        "request_time_scale": "seconds",
        "peak_cpu_util": (0.90, 1.00),
        "thread_core_ratio": 100,
        "per_server_rps": 1_000,
        "rpc_fanout": 100,
        "instructions_per_request": 1e9,
    },
    "ranking": {
        "benchmarks": ["feedsim"],
        "metric": "RPS under latency SLO",
        "request_time_scale": "seconds",
        "peak_cpu_util": (0.50, 0.70),
        "thread_core_ratio": 10,
        "per_server_rps": 100,
        "rpc_fanout": 10,
        "instructions_per_request": 1e10,
    },
    "caching": {
        "benchmarks": ["taobench"],
        "metric": "peak RPS and cache hit rate",
        "request_time_scale": "milliseconds",
        "peak_cpu_util": (0.80, 0.80),
        "thread_core_ratio": 10,
        "per_server_rps": 1_000_000,
        "rpc_fanout": 10,
        "instructions_per_request": 1e3,
    },
    "bigdata": {
        "benchmarks": ["sparkbench"],
        "metric": "throughput",
        "request_time_scale": "minutes",
        "peak_cpu_util": (0.60, 0.80),
        "thread_core_ratio": 1,
        "per_server_rps": 10,
        "rpc_fanout": 10,
        "instructions_per_request": 1e10,
    },
    "media": {
        "benchmarks": ["videotranscode"],
        "metric": "throughput",
        "request_time_scale": "minutes",
        "peak_cpu_util": (0.95, 1.00),
        "thread_core_ratio": 1,
        "per_server_rps": 10,
        "rpc_fanout": 0,
        "instructions_per_request": 1e6,
    },
}

#: Figure 12 — cycle shares (fractions) per workload; ``app:`` prefixed
#: categories are application logic, the rest datacenter tax.  Values
#: reconstruct the figure's qualitative shape (e.g. TaoBench spending
#: far less on compression/serialization than the cache production
#: workload it models).
FIG12_TAX_PROFILES: Dict[str, Dict[str, float]] = {
    "cache-prod": {
        "app:cache_logic": 0.15, "kvstore": 0.25, "rpc": 0.12,
        "compression": 0.10, "serialization": 0.08, "memory": 0.08,
        "threadmanager": 0.06, "hashing": 0.04, "others": 0.12,
    },
    "taobench": {
        "app:cache_logic": 0.15, "kvstore": 0.30, "rpc": 0.12,
        "compression": 0.02, "serialization": 0.02, "memory": 0.10,
        "threadmanager": 0.08, "hashing": 0.04, "benchmark_clients": 0.08,
        "others": 0.09,
    },
    "ranking-prod": {
        "app:feature_extraction": 0.30, "app:ranking": 0.20, "rpc": 0.12,
        "compression": 0.08, "serialization": 0.08, "threadmanager": 0.05,
        "memory": 0.06, "io_preparation": 0.04, "others": 0.07,
    },
    "feedsim": {
        "app:feature_extraction": 0.28, "app:ranking": 0.22, "rpc": 0.12,
        "compression": 0.08, "serialization": 0.08, "threadmanager": 0.06,
        "memory": 0.06, "io_preparation": 0.03, "benchmark_clients": 0.04,
        "others": 0.03,
    },
    "fbweb-prod": {
        "app:hhvm_jit": 0.25, "app:web_logic": 0.20, "app:mysql": 0.08,
        "rpc": 0.10, "compression": 0.06, "serialization": 0.06,
        "memory": 0.08, "hashing": 0.03, "others": 0.14,
    },
    "mediawiki": {
        "app:hhvm_jit": 0.22, "app:web_logic": 0.22, "app:mysql": 0.08,
        "rpc": 0.10, "compression": 0.06, "serialization": 0.06,
        "memory": 0.08, "hashing": 0.03, "benchmark_clients": 0.06,
        "others": 0.09,
    },
    "spark-prod": {
        "app:spark": 0.55, "serialization": 0.10, "compression": 0.08,
        "memory": 0.08, "io_preparation": 0.08, "others": 0.11,
    },
    "sparkbench": {
        "app:spark": 0.58, "serialization": 0.10, "compression": 0.08,
        "memory": 0.07, "io_preparation": 0.08, "others": 0.09,
    },
    "storage-prod": {
        "app:storage_engine": 0.16, "kvstore": 0.28, "compression": 0.13,
        "serialization": 0.05, "rpc": 0.11, "memory": 0.08,
        "threadmanager": 0.06, "hashing": 0.05, "others": 0.08,
    },
    "storagebench": {
        "app:storage_engine": 0.18, "kvstore": 0.26, "compression": 0.12,
        "serialization": 0.04, "rpc": 0.10, "memory": 0.08,
        "threadmanager": 0.06, "hashing": 0.05, "benchmark_clients": 0.05,
        "others": 0.06,
    },
    "llmbench": {
        "app:attention": 0.30, "app:mlp": 0.22, "app:sampling": 0.06,
        "kvcache": 0.14, "rpc": 0.08, "serialization": 0.06,
        "memory": 0.08, "threadmanager": 0.03, "others": 0.03,
    },
}

#: Figure 13 — CloudSuite observations used as shape targets.
FIG13_CLOUDSUITE: Dict[str, object] = {
    # 13a: on 72 cores, util 12% -> 88% (7.3x) yields only +26% RPS.
    "data_caching_skua_util_range": (0.12, 0.88),
    "data_caching_skua_rps_gain": 0.26,
    # 13a: on 176 cores throughput *decreases* as threads/util grow.
    "data_caching_sku4_degrades": True,
    # 13b: throughput flattens past load scale ~100; errors past ~140.
    "web_serving_flatten_scale": 100,
    "web_serving_error_scale": 140,
    # 13c: in-memory analytics pins around 20% CPU utilization.
    "in_memory_analytics_util": 0.20,
}
