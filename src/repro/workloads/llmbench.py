"""LlmBench: session-based LLM token-serving benchmark family.

The suite's fastest-growing fleet category (the paper's §8 future-work
item) is AI serving; ``aibench`` covers single-shot DLRM ranking, and
LlmBench adds the token-streaming shape: multi-turn sessions whose
turns flow through a continuous-batching engine with a prefill phase
(compute-bound, per prompt token), a decode phase (memory-bandwidth
bound, per resident sequence), a KV-cache ledger against an HBM
budget, and a prefix cache discounting shared prompt heads.

Serving structure:

* **Arrivals are turns.**  The open-loop generator drives turn-level
  requests; each arrival either continues a session whose think time
  has elapsed (FIFO over ready sessions) or starts a fresh session
  from the deterministic :class:`~repro.llm.sessions.SessionGenerator`.
  This keeps the harness's SLO machinery per-turn — exactly the
  granularity at which serving stacks shed load — while sessions
  still correlate turns through shared prefixes and think times.
* **Token-level SLOs.**  TTFT (arrival to first token) and inter-token
  gaps feed dedicated recorders; when the run carries the SLO control
  plane (``--faults overload_shed``), turn latency drives the windowed
  tracker, preemption stalls fold into its accounting, and the token
  percentiles surface as ``slo_ttft_*``/``slo_itl_*`` in the report's
  SLO section.
* **Replica sizing scales with the SKU** (one serving instance per
  :data:`CORES_PER_REPLICA` logical cores), so suite SKU sweeps move
  llmbench throughput the way they move every other benchmark.

The catalog mixes (:mod:`repro.llm.catalog`) parameterise everything
else: ``chat`` and ``codegen`` are the scored suite entries;
``rag_summarize`` and ``long_reasoning`` are unscored probes (the
latter is the KV-pressure torture test).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generator, Optional

from repro.llm.catalog import LlmMix, get_mix
from repro.llm.engine import (
    EngineParams,
    EngineStats,
    LlmReplica,
    Sequence,
    expected_turn_instructions,
)
from repro.llm.sessions import SessionGenerator, SessionPlan
from repro.loadgen.generators import Request
from repro.loadgen.recorder import LatencyRecorder
from repro.uarch.characteristics import WorkloadCharacteristics
from repro.workloads.base import RunConfig, Workload, WorkloadResult
from repro.workloads.profiles import BENCHMARK_PROFILES
from repro.workloads.runner import BenchmarkHarness

#: Logical cores one serving replica occupies (model execution plus the
#: host-side tokenize/schedule/stream threads).
CORES_PER_REPLICA = 8
#: Offered turn rate relative to the replicas' analytic capacity.
OFFERED_FRACTION = 0.75


class _SessionState:
    """A live session: its plan plus the next turn to play."""

    __slots__ = ("plan", "next_turn")

    def __init__(self, plan: SessionPlan) -> None:
        self.plan = plan
        self.next_turn = 0


class LlmBench(Workload):
    """Token-serving benchmark over the continuous-batching engine."""

    category = "ai-inference"
    metric_name = "turns/s"

    def __init__(
        self,
        mix: str = "chat",
        name: Optional[str] = None,
        params: Optional[EngineParams] = None,
    ) -> None:
        self.mix: LlmMix = get_mix(mix)
        self.name = name or f"llmbench-{self.mix.name}"
        self.params = params or EngineParams()
        self._chars = BENCHMARK_PROFILES["llmbench"].evolve(name=self.name)

    @property
    def characteristics(self) -> WorkloadCharacteristics:
        return self._chars

    def run(self, config: RunConfig) -> WorkloadResult:
        harness = BenchmarkHarness(config, self._chars)
        env = harness.env
        mix = self.mix
        params = self.params
        cores = config.sku.cpu.logical_cores
        num_replicas = max(1, cores // CORES_PER_REPLICA)

        ttft = LatencyRecorder()
        itl = LatencyRecorder(backend="hdr")
        engine_stats = EngineStats()
        slo_tracker = harness.slo_tracker

        def on_first_token(seq: Sequence, seconds: float) -> None:
            ttft.record(seconds)

        def on_token(seq: Sequence, seconds: float) -> None:
            itl.record(seconds)

        on_preempt_resume = None
        if slo_tracker is not None:

            def on_preempt_resume(seq: Sequence, seconds: float) -> None:
                # Time spent evicted from the batch is SLO-relevant
                # stall, same as StorageBench's write stalls.
                slo_tracker.add_stall(seconds)

        replicas = [
            LlmReplica(
                harness,
                params,
                stats=engine_stats,
                on_first_token=on_first_token,
                on_token=on_token,
                on_preempt_resume=on_preempt_resume,
            )
            for _ in range(num_replicas)
        ]

        generator = SessionGenerator(mix, harness.rng)
        ready: Deque[_SessionState] = deque()
        counters = {
            "sessions": 0,
            "turns_submitted": 0,
            "seq_id": 0,
            "sessions_finished": 0,
        }
        next_replica = [0]

        def rejoin(state: _SessionState, think: float) -> Generator:
            yield env.sleep(think)
            ready.append(state)

        def handler(request: Request) -> Generator:
            if ready:
                state = ready.popleft()
            else:
                plan = generator.plan(counters["sessions"])
                counters["sessions"] += 1
                state = _SessionState(plan)
            turn = state.plan.turns[state.next_turn]
            seq = Sequence(
                seq_id=counters["seq_id"],
                prompt_tokens=turn.prompt_tokens,
                output_tokens=turn.output_tokens,
                prefix_group=state.plan.prefix_group,
                prefix_tokens=turn.prefix_tokens,
            )
            counters["seq_id"] += 1
            counters["turns_submitted"] += 1
            replica = replicas[next_replica[0]]
            next_replica[0] = (next_replica[0] + 1) % num_replicas
            done = replica.submit(seq)
            yield done
            state.next_turn += 1
            if state.next_turn < len(state.plan.turns):
                env.process(
                    rejoin(state, state.plan.think_times_s[state.next_turn])
                )
            else:
                counters["sessions_finished"] += 1

        # Warmup-edge reset: token/engine counters restart when the
        # harness's own recorder does, so the report covers only the
        # measurement window.  KV residency (real state) carries over.
        baselines = {"sessions": 0, "turns": 0}

        def window_reset() -> Generator:
            yield env.sleep(config.warmup_seconds)
            ttft.reset()
            itl.reset()
            engine_stats.reset()
            for replica in replicas:
                replica.kv.peak_tokens = replica.kv.resident_tokens
                replica.kv.overflow_tokens = 0
            baselines["sessions"] = counters["sessions"]
            baselines["turns"] = counters["turns_submitted"]

        env.process(window_reset())

        turn_instr = expected_turn_instructions(mix, params)
        offered = (
            num_replicas
            * harness.server.per_logical_ips
            / turn_instr
            * OFFERED_FRACTION
            * config.load_scale
        )
        result = harness.run_open_loop(handler, offered_rps=offered)

        elapsed = result.extra.get(
            "measured_seconds", config.measure_seconds
        )
        kv_peak_tokens = max(r.kv.peak_tokens for r in replicas)
        kv_overflow = sum(r.kv.overflow_tokens for r in replicas)
        queued_now = sum(len(r.pending) for r in replicas)
        extra = result.extra
        extra["offered_rps"] = offered
        extra["llm_replicas"] = float(num_replicas)
        extra["llm_batch_slots"] = float(params.max_batch_slots)
        extra["llm_kv_budget_bytes"] = params.kv_budget_bytes
        extra["llm_kv_bytes_per_token"] = params.kv_bytes_per_token
        extra["llm_sessions_started"] = float(
            counters["sessions"] - baselines["sessions"]
        )
        extra["llm_turns_submitted"] = float(
            counters["turns_submitted"] - baselines["turns"]
        )
        extra["llm_turns_completed"] = float(engine_stats.completions)
        extra["llm_engine_steps"] = float(engine_stats.steps)
        extra["llm_prefill_tokens"] = float(engine_stats.prefill_tokens)
        extra["llm_decoded_tokens"] = float(engine_stats.decoded_tokens)
        extra["llm_cached_prefix_tokens"] = float(
            engine_stats.cached_prefix_tokens
        )
        extra["llm_tokens_per_second"] = (
            engine_stats.decoded_tokens / elapsed if elapsed > 0 else 0.0
        )
        extra["llm_prefix_hit_rate"] = (
            engine_stats.prefix_hits / engine_stats.prefix_lookups
            if engine_stats.prefix_lookups
            else 0.0
        )
        extra["llm_kv_peak_tokens"] = float(kv_peak_tokens)
        extra["llm_kv_peak_bytes"] = kv_peak_tokens * params.kv_bytes_per_token
        extra["llm_kv_overflow_tokens"] = float(kv_overflow)
        extra["llm_kv_preemptions"] = float(engine_stats.preemptions)
        extra["llm_kv_admission_blocked"] = float(
            engine_stats.admission_blocked_steps
        )
        extra["llm_queue_depth_peak"] = float(engine_stats.max_queue_depth)
        extra["llm_queue_depth_end"] = float(queued_now)
        extra["llm_ttft_p50_s"] = ttft.percentile(50.0) if len(ttft) else 0.0
        extra["llm_ttft_p99_s"] = ttft.percentile(99.0) if len(ttft) else 0.0
        extra["llm_itl_p50_s"] = itl.percentile(50.0) if len(itl) else 0.0
        extra["llm_itl_p99_s"] = itl.percentile(99.0) if len(itl) else 0.0
        if slo_tracker is not None:
            # Token-level SLO signals join the report's SLO section
            # (the SloControl hook passes slo_ttft_*/slo_itl_* through).
            extra["slo_ttft_p50_s"] = extra["llm_ttft_p50_s"]
            extra["slo_ttft_p99_s"] = extra["llm_ttft_p99_s"]
            extra["slo_itl_p99_s"] = extra["llm_itl_p99_s"]
        return result
