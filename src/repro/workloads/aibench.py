"""AIBench: recommendation-inference serving (extension).

The paper's future work (Section 8): "broadening DCPerf's coverage,
especially AI-related workloads, whose fleet sizes have been expanding
rapidly."  This workload implements that extension in the same style as
the six published benchmarks:

* **Correctness layer** — a real DLRM-style recommendation model in
  NumPy (embedding tables for sparse features, a bottom MLP for dense
  features, feature interaction, a top MLP producing a click
  probability), executed on deterministic synthetic requests.
* **Performance layer** — the serving architecture the fleet uses:
  requests queue at a batcher (batch up to N or a timeout), each batch
  runs an embedding-gather phase (memory-bandwidth bound) followed by
  an MLP phase (vector-compute bound) on the simulated server, under a
  p99 tail-latency SLO.

The characteristics vector is NOT calibrated against the paper (it
publishes no AI profile); it is a representative profile documented
here: modest code footprint (kernels, not business logic), very high
memory bandwidth (embedding gathers), high vector intensity (GEMMs),
little kernel time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

import numpy as np

from repro.loadgen.generators import Request
from repro.loadgen.slo import SLO, ProbeResult, find_max_load
from repro.uarch.characteristics import TaxProfile, WorkloadCharacteristics
from repro.workloads.base import RunConfig, Workload, WorkloadResult
from repro.workloads.runner import BenchmarkHarness

#: Inference SLO: p99 under 100 ms (interactive ranking budgets).
AIBENCH_SLO = SLO(percentile=99.0, latency_seconds=0.100)
#: Batching: collect up to MAX_BATCH requests or wait BATCH_TIMEOUT.
MAX_BATCH = 8
BATCH_TIMEOUT_S = 0.004
#: Instruction split between the two phases.
EMBEDDING_INSTR_FRACTION = 0.45
MLP_INSTR_FRACTION = 0.55

#: Representative characteristics (documented extension, not a paper
#: calibration): embedding gathers stream DRAM; GEMMs retire wide
#: vectors at high IPC.
AIBENCH_CHARACTERISTICS = WorkloadCharacteristics(
    name="aibench",
    category="ai-inference",
    code_footprint_kb=120.0,
    switches_per_kinstr=0.02,
    mem_refs_per_kinstr=420.0,
    data_reuse_kb=18_000.0,     # embedding tables dwarf every cache
    locality_beta=0.35,
    memory_level_parallelism=24.0,
    branch_per_kinstr=90.0,
    branch_mispredict_rate=0.008,
    dependency_cpk=35.0,
    vector_intensity=0.65,
    kernel_frac=0.05,
    instructions_per_request=1.2e6,
    thread_core_ratio=4,
    rpc_fanout=4,
    network_bytes_per_request=20_000.0,
    serial_fraction=0.0,
    platform_activity=0.10,
    tax_profile=TaxProfile(
        {
            "app:embedding_gather": 0.30,
            "app:mlp": 0.40,
            "rpc": 0.10,
            "serialization": 0.08,
            "memory": 0.06,
            "threadmanager": 0.03,
            "others": 0.03,
        }
    ),
)


# --- correctness layer: a real mini-DLRM -------------------------------------

@dataclass(frozen=True)
class DlrmConfig:
    """Shape of the toy recommendation model."""

    num_tables: int = 8
    rows_per_table: int = 2_000
    embedding_dim: int = 16
    dense_features: int = 13
    bottom_mlp: int = 32
    top_mlp: int = 64


class MiniDlrm:
    """Deterministic DLRM-style model: embeddings + MLPs + interaction."""

    def __init__(self, config: Optional[DlrmConfig] = None, seed: int = 11) -> None:
        self.config = config or DlrmConfig()
        rng = np.random.default_rng(seed)
        c = self.config
        scale = 1.0 / np.sqrt(c.embedding_dim)
        self.tables = [
            rng.normal(0, scale, size=(c.rows_per_table, c.embedding_dim))
            for _ in range(c.num_tables)
        ]
        self.w_bottom1 = rng.normal(0, 0.3, size=(c.dense_features, c.bottom_mlp))
        self.w_bottom2 = rng.normal(0, 0.3, size=(c.bottom_mlp, c.embedding_dim))
        interaction_dim = (c.num_tables + 1) * c.embedding_dim
        self.w_top1 = rng.normal(0, 0.2, size=(interaction_dim, c.top_mlp))
        self.w_top2 = rng.normal(0, 0.2, size=(c.top_mlp, 1))

    def infer(self, dense: np.ndarray, sparse_ids: np.ndarray) -> np.ndarray:
        """Batched inference; returns click probabilities in (0, 1).

        Args:
            dense: float array (batch, dense_features).
            sparse_ids: int array (batch, num_tables).
        """
        c = self.config
        if dense.shape[1] != c.dense_features:
            raise ValueError("dense feature width mismatch")
        if sparse_ids.shape[1] != c.num_tables:
            raise ValueError("sparse table count mismatch")
        if (sparse_ids < 0).any() or (sparse_ids >= c.rows_per_table).any():
            raise ValueError("sparse id out of table range")

        # Bottom MLP over dense features.
        hidden = np.maximum(0.0, dense @ self.w_bottom1)
        dense_vec = np.maximum(0.0, hidden @ self.w_bottom2)
        # Embedding gathers (the memory-bound phase).
        gathered = [
            self.tables[t][sparse_ids[:, t]] for t in range(c.num_tables)
        ]
        # Interaction: concatenate dense projection + embeddings.
        features = np.concatenate([dense_vec] + gathered, axis=1)
        # Top MLP -> logit -> probability.
        top = np.maximum(0.0, features @ self.w_top1)
        logits = (top @ self.w_top2).reshape(-1)
        return 1.0 / (1.0 + np.exp(-logits))


def make_inference_batch(
    batch_size: int, config: Optional[DlrmConfig] = None, seed: int = 5
):
    """Deterministic synthetic request batch (dense + sparse features)."""
    config = config or DlrmConfig()
    rng = np.random.default_rng(seed)
    dense = rng.normal(0, 1, size=(batch_size, config.dense_features))
    sparse = rng.integers(
        0, config.rows_per_table, size=(batch_size, config.num_tables)
    )
    return dense, sparse


# --- performance layer ----------------------------------------------------------

class AiBench(Workload):
    """Batched recommendation-inference serving under a p99 SLO."""

    name = "aibench"
    category = "ai-inference"
    metric_name = "inferences/s under p99<100ms SLO"

    def __init__(self, chars: Optional[WorkloadCharacteristics] = None) -> None:
        self._chars = chars or AIBENCH_CHARACTERISTICS

    @property
    def characteristics(self) -> WorkloadCharacteristics:
        return self._chars

    def validate_model(self, batch_size: int = 64):
        """Run the real model; returns (probabilities, model)."""
        model = MiniDlrm()
        dense, sparse = make_inference_batch(batch_size, model.config)
        probabilities = model.infer(dense, sparse)
        return probabilities, model

    def _build_handler(self, harness: BenchmarkHarness):
        env = harness.env
        cores = harness.sku.cpu.logical_cores
        # Model replicas: inference serving shards the model one copy
        # per few cores, each with its own batcher — this is what lets
        # the workload scale with core count (a batch runs on one
        # replica regardless of how many cores the box has).
        num_replicas = max(1, cores // 8)
        pool = harness.make_pool("inference-workers", max(2, cores))
        instr = self._chars.instructions_per_request

        class Replica:
            def __init__(self) -> None:
                self.pending: List = []
                self.batch_open = False

            def run_batch(self, batch: List) -> Generator:
                size = len(batch)
                # Embedding gathers scale with batch size; the MLP GEMM
                # amortizes (that is the point of batching).
                yield from harness.burst(
                    instr * EMBEDDING_INSTR_FRACTION * size
                )
                yield from harness.burst(
                    instr * MLP_INSTR_FRACTION * (1.0 + 0.55 * (size - 1))
                )
                for done in batch:
                    done.succeed()

            def flush(self) -> None:
                batch = [done for _, done in self.pending]
                self.pending.clear()
                self.batch_open = False
                pool.submit(lambda b=batch: self.run_batch(b))

            def batch_timer(self) -> Generator:
                yield env.sleep(BATCH_TIMEOUT_S)
                if self.batch_open and self.pending:
                    self.flush()

        replicas = [Replica() for _ in range(num_replicas)]
        next_replica = [0]

        def handler(request: Request) -> Generator:
            replica = replicas[next_replica[0] % num_replicas]
            next_replica[0] += 1
            done = env.event()
            replica.pending.append((request, done))
            if not replica.batch_open:
                replica.batch_open = True
                env.process(replica.batch_timer())
            if len(replica.pending) >= MAX_BATCH:
                replica.flush()
            yield done

        return handler

    def _probe(self, config: RunConfig, offered_rps: float) -> ProbeResult:
        harness = BenchmarkHarness(config, self._chars)
        handler = self._build_handler(harness)
        result = harness.run_open_loop(handler, offered_rps=offered_rps)
        p99 = result.latency.get("p99", float("inf"))
        return ProbeResult(
            offered_rps=offered_rps,
            achieved_rps=result.throughput_rps,
            latency_at_percentile=p99,
            error_rate=0.0,
            cpu_util=result.cpu_util,
        )

    def run(self, config: RunConfig) -> WorkloadResult:
        harness = BenchmarkHarness(config, self._chars)
        capacity = harness.server.capacity_rps()
        search = find_max_load(
            probe=lambda rate: self._probe(config, rate),
            slo=AIBENCH_SLO,
            low_rps=capacity * 0.15,
            high_rps=capacity * 1.6 * config.load_scale,
            tolerance=0.05,
        )
        harness = BenchmarkHarness(config, self._chars)
        handler = self._build_handler(harness)
        result = harness.run_open_loop(handler, offered_rps=search.max_rps)
        probabilities, _ = self.validate_model()
        result.extra["slo_max_rps"] = search.max_rps
        result.extra["slo_p99_seconds"] = search.probe.latency_at_percentile
        result.extra["validation_mean_ctr"] = float(probabilities.mean())
        result.extra["validation_batch"] = float(len(probabilities))
        return result
