"""CloudSuite comparator models (Section 4.6, Figure 13).

The paper evaluates three CloudSuite benchmarks and finds each fails to
scale on modern many-core servers.  These models implement the
*mechanisms* behind each observed failure:

* **Data Caching** (Fig. 13a) — Memcached with the Twitter dataset, a
  look-aside (not read-through) cache.  Scaling defects: the benchmark
  supports at most five server instances (more segfault the client),
  and each instance funnels requests through a serialized network
  thread.  Client threads *spin* while waiting for the serialized
  section, so adding threads raises CPU utilization without adding
  throughput — on a 176-core SKU throughput even decreases as spinners
  steal cycles from useful work.
* **Web Serving** (Fig. 13b) — Elgg/PHP/Nginx with MariaDB.  Scaling
  defect: a fixed-size database connection pool; past a load scale of
  ~100, extra clients queue on the pool, throughput flattens, and
  requests begin timing out (504s) past ~140 even though CPU (request
  setup and polling that runs before the DB wait) keeps climbing to
  100%.
* **In-memory Analytics** (Fig. 13c) — Spark ALS on the ~1.2GB
  MovieLens dataset.  Scaling defect: dataset-bound parallelism; the
  job's partition count leaves a 176-core machine ~20% utilized no
  matter the executor configuration.  A real (NumPy) mini-ALS provides
  the correctness layer.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Generator, List, Tuple

import numpy as np

from repro.cachelib.memcached import MemcachedServer
from repro.cachelib.readthrough import LookAsideCache
from repro.loadgen.generators import Request
from repro.loadgen.recorder import LatencyRecorder
from repro.sim.resources import Resource
from repro.sim.rng import ZipfSampler
from repro.uarch.characteristics import WorkloadCharacteristics
from repro.workloads.base import RunConfig, Workload, WorkloadResult
from repro.workloads.profiles import BENCHMARK_PROFILES, PRODUCTION_PROFILES
from repro.workloads.runner import BenchmarkHarness

# --- Data Caching -------------------------------------------------------------

#: CloudSuite crashes with more than five Memcached instances.
MAX_SERVER_INSTANCES = 5
#: Fraction of each request serialized on the instance network thread.
SERIALIZED_FRACTION = 0.35
#: CPU burned per spin attempt while waiting on the serialized section.
SPIN_QUANTUM_S = 0.002
#: Batch factor for the very high request rate.
DATA_CACHING_BATCH = 400


class CloudSuiteDataCaching(Workload):
    """Look-aside Memcached with per-instance serialization + spinning."""

    name = "cloudsuite-data-caching"
    category = "caching"
    metric_name = "RPS"

    def __init__(self, client_threads_per_core: float = 2.0) -> None:
        # CloudSuite's cache workload resembles TAO's but without the
        # read-through architecture or the datacenter-tax calibration;
        # reuse the caching profile as the closest uarch description.
        self._chars = BENCHMARK_PROFILES["taobench"].evolve(
            name="cloudsuite-data-caching"
        )
        if client_threads_per_core <= 0:
            raise ValueError("client_threads_per_core must be positive")
        self.client_threads_per_core = client_threads_per_core

    @property
    def characteristics(self) -> WorkloadCharacteristics:
        return self._chars

    def run(self, config: RunConfig) -> WorkloadResult:
        config = dataclasses.replace(
            config,
            warmup_seconds=min(config.warmup_seconds, 0.3),
            batch=max(config.batch, DATA_CACHING_BATCH),
        )
        harness = BenchmarkHarness(config, self._chars)
        env = harness.env
        sched = harness.scheduler
        cores = config.sku.cpu.logical_cores
        instances = MAX_SERVER_INSTANCES
        instance_locks = [Resource(env, capacity=1) for _ in range(instances)]
        servers = [
            MemcachedServer(capacity_bytes=4 * 1024 * 1024, clock=lambda: env.now)
            for _ in range(instances)
        ]
        caches = [LookAsideCache(s) for s in servers]
        zipf = ZipfSampler(50_000, 0.95)
        key_rng = harness.rng.stream("keys")
        instr = self._chars.instructions_per_request
        recorder = harness.recorder
        completed = [0]

        num_clients = max(2, int(cores * self.client_threads_per_core))

        def client_loop(client_id: int) -> Generator:
            while True:
                rank = zipf.sample(key_rng)
                shard = rank % instances
                key = f"tw:{rank}"
                start = env.now
                cache = caches[shard]
                if cache.get(key) is None:
                    yield env.sleep(0.001)
                    cache.fill(key, key.encode() * 8)
                # Spin until the instance's serialized section is free.
                lock = instance_locks[shard]
                while lock.count >= lock.capacity:
                    yield from sched.execute(SPIN_QUANTUM_S, 0.0)
                grant = lock.request()
                yield grant
                try:
                    yield from harness.burst(instr * SERIALIZED_FRACTION)
                finally:
                    lock.release(grant)
                yield from harness.burst(instr * (1.0 - SERIALIZED_FRACTION))
                recorder.record(env.now - start)
                completed[0] += 1

        for i in range(num_clients):
            env.process(client_loop(i))

        env.run(until=config.warmup_seconds)
        recorder.reset()
        sched.stats.reset(env.now)
        before = completed[0]
        env.run(until=config.warmup_seconds + config.measure_seconds)
        done = completed[0] - before
        result = harness._assemble(done)
        hit = sum(c.stats.hit_rate for c in caches) / len(caches)
        result.extra["cache_hit_rate"] = hit
        result.extra["instances"] = float(instances)
        result.extra["client_threads"] = float(num_clients)
        return result


def data_caching_curve(
    sku_name: str, thread_levels: List[float], seed: int = 7
) -> List[Tuple[float, float]]:
    """Figure 13a: (cpu_util, rps) points across client-thread counts."""
    points = []
    for threads in thread_levels:
        workload = CloudSuiteDataCaching(client_threads_per_core=threads)
        result = workload.run(
            RunConfig(sku_name=sku_name, seed=seed, measure_seconds=0.6)
        )
        points.append((result.cpu_util, result.throughput_rps))
    return points


# --- Web Serving ----------------------------------------------------------------

#: Fixed database connection pool — the Fig. 13b bottleneck.
DB_POOL_SIZE = 16
#: Database time per request (holding a pool connection).
DB_TIME_MEAN_S = 0.15
#: Request timeout -> "504 Gateway Timeout".
GATEWAY_TIMEOUT_S = 1.0
#: Heavyweight PHP work per op (Elgg renders are expensive).
WEB_SERVING_INSTR = 2.0e9
#: Share of the op's CPU burned before the DB wait (setup + polling) —
#: it runs for every arriving request, which is why CPU keeps climbing
#: after goodput flattens.
PRE_DB_INSTR_FRACTION = 0.55


class CloudSuiteWebServing(Workload):
    """Elgg-style PHP serving with a fixed DB connection pool."""

    name = "cloudsuite-web-serving"
    category = "web"
    metric_name = "ops/s"

    def __init__(self, load_scale_factor: int = 100) -> None:
        self._chars = BENCHMARK_PROFILES["mediawiki"].evolve(
            name="cloudsuite-web-serving",
            instructions_per_request=WEB_SERVING_INSTR,
        )
        if load_scale_factor < 1:
            raise ValueError("load_scale_factor must be >= 1")
        self.load_scale_factor = load_scale_factor

    @property
    def characteristics(self) -> WorkloadCharacteristics:
        return self._chars

    def run(self, config: RunConfig) -> WorkloadResult:
        harness = BenchmarkHarness(config, self._chars)
        env = harness.env
        cores = config.sku.cpu.logical_cores
        pool = harness.make_pool("php-workers", cores * 3)
        db_pool = Resource(env, capacity=DB_POOL_SIZE)
        db_rng = harness.rng.stream("db")
        instr = self._chars.instructions_per_request
        errors = [0]

        def serve() -> Generator:
            start = env.now
            # Setup/polling work burns CPU whether or not the DB keeps up.
            yield from harness.burst(instr * PRE_DB_INSTR_FRACTION)
            conn = db_pool.request()
            yield conn
            try:
                if env.now - start > GATEWAY_TIMEOUT_S:
                    raise TimeoutError("504 Gateway Timeout")
                yield env.sleep(db_rng.expovariate(1.0 / DB_TIME_MEAN_S))
            finally:
                db_pool.release(conn)
            yield from harness.burst(instr * (1.0 - PRE_DB_INSTR_FRACTION))

        def handler(request: Request) -> Generator:
            done = pool.submit(serve)
            try:
                yield done
            except TimeoutError:
                errors[0] += 1

        # Load scale n ~ n concurrent users issuing ~1 op/s each.
        offered = float(self.load_scale_factor) * 1.0 * config.load_scale
        result = harness.run_open_loop(handler, offered_rps=offered)
        # The generator counts a timed-out request as completed (the
        # handler swallows the 504); goodput must exclude them.
        errors_per_second = errors[0] / config.measure_seconds
        result.throughput_rps = max(0.0, result.throughput_rps - errors_per_second)
        total = result.latency.get("count", 0) + errors[0]
        result.extra["load_scale"] = float(self.load_scale_factor)
        result.extra["errors_per_second"] = errors[0] / config.measure_seconds
        result.extra["error_rate"] = errors[0] / max(1.0, total)
        return result


def web_serving_curve(
    sku_name: str, load_scales: List[int], seed: int = 7
) -> List[Tuple[int, float, float, float]]:
    """Figure 13b: (scale, ops/s, errors/s, cpu_util) per load scale."""
    points = []
    for scale in load_scales:
        workload = CloudSuiteWebServing(load_scale_factor=scale)
        result = workload.run(
            RunConfig(sku_name=sku_name, seed=seed, measure_seconds=3.0)
        )
        points.append(
            (
                scale,
                result.throughput_rps,
                result.extra["errors_per_second"],
                result.cpu_util,
            )
        )
    return points


# --- In-memory Analytics ---------------------------------------------------------

#: MovieLens-scale dataset: fixed partitioning caps parallelism.
ALS_PARTITIONS = 32
ALS_ITERATIONS = 6
#: Latent factor rank for the real mini-ALS.
ALS_RANK = 8
#: Per-partition instruction budget relative to the Spark task size —
#: sized so the job spans the ~500s window of Figure 13c.
ALS_TASK_INSTR_MULT = 6.5


@dataclass
class AlsResult:
    """Output of the real (NumPy) mini-ALS correctness layer."""

    rmse_start: float
    rmse_end: float
    iterations: int

    @property
    def improved(self) -> bool:
        return self.rmse_end < self.rmse_start


def run_mini_als(
    num_users: int = 120,
    num_items: int = 80,
    rank: int = ALS_RANK,
    iterations: int = 5,
    seed: int = 3,
) -> AlsResult:
    """Alternating least squares on a synthetic rating matrix.

    The real algorithm CloudSuite's benchmark runs, at toy scale:
    factor a sparse rating matrix R ~ U @ V.T by alternately solving
    ridge-regularized least squares for U and V.
    """
    rng = np.random.default_rng(seed)
    true_u = rng.normal(size=(num_users, rank))
    true_v = rng.normal(size=(num_items, rank))
    ratings = true_u @ true_v.T + rng.normal(scale=0.1, size=(num_users, num_items))
    mask = rng.random((num_users, num_items)) < 0.3

    u = rng.normal(scale=0.1, size=(num_users, rank))
    v = rng.normal(scale=0.1, size=(num_items, rank))
    lam = 0.1

    def rmse() -> float:
        pred = u @ v.T
        err = (pred - ratings)[mask]
        return float(np.sqrt(np.mean(err**2)))

    start = rmse()
    eye = lam * np.eye(rank)
    for _ in range(iterations):
        for i in range(num_users):
            cols = mask[i]
            if not cols.any():
                continue
            a = v[cols].T @ v[cols] + eye
            b = v[cols].T @ ratings[i, cols]
            u[i] = np.linalg.solve(a, b)
        for j in range(num_items):
            rows = mask[:, j]
            if not rows.any():
                continue
            a = u[rows].T @ u[rows] + eye
            b = u[rows].T @ ratings[rows, j]
            v[j] = np.linalg.solve(a, b)
    return AlsResult(rmse_start=start, rmse_end=rmse(), iterations=iterations)


class CloudSuiteInMemoryAnalytics(Workload):
    """Spark ALS with dataset-bound parallelism."""

    name = "cloudsuite-in-memory-analytics"
    category = "bigdata"
    metric_name = "job seconds"

    def __init__(self) -> None:
        self._chars = PRODUCTION_PROFILES["spark-prod"].evolve(
            name="cloudsuite-in-memory-analytics"
        )

    @property
    def characteristics(self) -> WorkloadCharacteristics:
        return self._chars

    def utilization_timeline(
        self, config: RunConfig, sample_period_s: float = 5.0
    ) -> List[Tuple[float, float]]:
        """Figure 13c: (time, cpu_util) samples over the ALS job."""
        harness = BenchmarkHarness(config, self._chars)
        env = harness.env
        cores = config.sku.cpu.logical_cores
        pool = harness.make_pool("executors", cores)
        instr_per_task = (
            self._chars.instructions_per_request * ALS_TASK_INSTR_MULT
        )
        samples: List[Tuple[float, float]] = []
        finished = [False]

        def sampler() -> Generator:
            while not finished[0]:
                harness.scheduler.stats.reset(env.now)
                yield env.sleep(sample_period_s)
                samples.append(
                    (env.now, harness.scheduler.stats.cpu_util(env.now, cores))
                )

        def driver() -> Generator:
            # The defect: only ALS_PARTITIONS tasks exist per phase,
            # so at most ALS_PARTITIONS cores are ever busy.
            for _ in range(ALS_ITERATIONS):
                for _phase in ("users", "items"):
                    events = [
                        pool.submit(lambda: harness.burst(instr_per_task))
                        for _ in range(ALS_PARTITIONS)
                    ]
                    for event in events:
                        yield event
            finished[0] = True

        env.process(sampler())
        env.process(driver())
        env.run()
        if not finished[0]:
            raise RuntimeError("ALS job did not finish")
        return samples

    def run(self, config: RunConfig) -> WorkloadResult:
        timeline = self.utilization_timeline(config)
        job_end = timeline[-1][0] if timeline else 0.0
        utils = [u for _, u in timeline]
        avg_util = sum(utils) / len(utils) if utils else 0.0
        als = run_mini_als()
        harness = BenchmarkHarness(config, self._chars)
        steady = harness.server.steady_state(max(0.02, avg_util), 1.0)
        return WorkloadResult(
            workload=self.name,
            sku=config.sku_name,
            kernel=config.kernel_version,
            throughput_rps=1.0 / max(1e-9, job_end),
            latency={"count": float(len(timeline)), "job_seconds": job_end},
            cpu_util=avg_util,
            kernel_util=avg_util * self._chars.kernel_frac,
            scaling_efficiency=min(
                1.0, ALS_PARTITIONS / config.sku.cpu.logical_cores
            ),
            steady=steady,
            extra={
                "job_seconds": job_end,
                "als_rmse_start": als.rmse_start,
                "als_rmse_end": als.rmse_end,
            },
        )
