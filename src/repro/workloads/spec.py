"""SPEC CPU 2006/2017 comparator suites.

SPEC CPU rate runs are single-process, user-space compute loops — one
copy pinned per logical core, no RPC, no kernel time, no SLO.  The
model therefore skips the event-level simulation entirely: throughput
is the projection engine's instruction rate at 100% utilization with
perfect scaling, which is exactly the property that makes SPEC
*overestimate* many-core datacenter performance (Figure 2/3) — real
datacenter workloads lose throughput to kernel time, synchronization,
and SLOs that SPEC never pays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.hw.sku import ServerSku, get_sku
from repro.uarch.characteristics import WorkloadCharacteristics
from repro.uarch.projection import ProjectionEngine, SteadyState
from repro.workloads.base import RunConfig, Workload, WorkloadResult
from repro.workloads.profiles import SPEC2017_PROFILES
from repro.uarch.calibrate import calibrate
from repro.workloads.targets import SPEC2006_TARGETS


def _build_spec2006() -> Dict[str, WorkloadCharacteristics]:
    from repro.workloads.profiles import _SPEC_STRUCTURE

    return {
        name: calibrate(target, _SPEC_STRUCTURE)
        for name, target in SPEC2006_TARGETS.items()
    }


SPEC2006_PROFILES: Dict[str, WorkloadCharacteristics] = _build_spec2006()


class SpecBenchmark(Workload):
    """One SPEC component benchmark in rate mode."""

    category = "spec"
    metric_name = "rate score (normalized instr/s)"

    def __init__(self, chars: WorkloadCharacteristics) -> None:
        self._chars = chars
        self.name = chars.name

    @property
    def characteristics(self) -> WorkloadCharacteristics:
        return self._chars

    def steady_state(self, sku: ServerSku) -> SteadyState:
        return ProjectionEngine(sku).solve(self._chars, cpu_util=1.0)

    def run(self, config: RunConfig) -> WorkloadResult:
        state = self.steady_state(config.sku)
        return WorkloadResult(
            workload=self.name,
            sku=config.sku_name,
            kernel=config.kernel_version,
            throughput_rps=state.instructions_per_second,
            latency={"count": 1.0},
            cpu_util=1.0,
            kernel_util=self._chars.kernel_frac,
            scaling_efficiency=1.0,
            steady=state,
        )


@dataclass
class SpecSuite:
    """A SPEC generation: per-benchmark scores + geometric mean."""

    name: str
    profiles: Dict[str, WorkloadCharacteristics]

    def benchmarks(self) -> List[SpecBenchmark]:
        return [SpecBenchmark(chars) for chars in self.profiles.values()]

    def throughput(self, sku_name: str) -> Dict[str, float]:
        """Per-benchmark instruction throughput on a SKU."""
        sku = get_sku(sku_name)
        return {
            bench.name: bench.steady_state(sku).instructions_per_second
            for bench in self.benchmarks()
        }

    def score(self, sku_name: str, baseline_sku: str = "SKU1") -> float:
        """Geomean of per-benchmark ratios vs the baseline SKU."""
        current = self.throughput(sku_name)
        base = self.throughput(baseline_sku)
        product = 1.0
        for name in current:
            product *= current[name] / base[name]
        return product ** (1.0 / len(current))

    def average_power_watts(self, sku_name: str) -> float:
        """Mean wall power across the suite on a SKU (Perf/Watt input)."""
        sku = get_sku(sku_name)
        watts = [
            bench.steady_state(sku).power_watts for bench in self.benchmarks()
        ]
        return sum(watts) / len(watts)


def spec2017_suite() -> SpecSuite:
    return SpecSuite(name="spec2017", profiles=dict(SPEC2017_PROFILES))


def spec2006_suite() -> SpecSuite:
    return SpecSuite(name="spec2006", profiles=dict(SPEC2006_PROFILES))


def get_spec_benchmark(name: str) -> SpecBenchmark:
    """Look up one SPEC component by its full name (e.g. 505.mcf)."""
    for profiles in (SPEC2017_PROFILES, SPEC2006_PROFILES):
        if name in profiles:
            return SpecBenchmark(profiles[name])
    raise KeyError(f"unknown SPEC benchmark {name!r}")
