"""SparkBench: the data-warehouse query benchmark.

Architecture (Section 3.2): a synthetic >100GB dataset on a RAID of
remote NVMe SSDs reached over NVMe-over-TCP; Spark executes a SQL
query that scans the full dataset, joins and compares, and writes
results to a new table.  Execution has three stages — the first two
load data (I/O-intensive), the third computes (CPU-intensive).  Total
time reflects end-to-end warehouse performance; stage-3 time isolates
CPU performance.

The model runs both layers of that description:

* **Correctness layer** — a scaled-down dataset is actually generated
  (:mod:`repro.data`) and the actual query runs on the mini engine
  (:mod:`repro.data.query`), so filters/joins/aggregates are real.
* **Performance layer** — the discrete-event simulation executes the
  three stages with one task per partition: stages 1-2 stream bytes
  over NVMe-over-TCP at the SKU's network bandwidth, stage 3 burns
  per-task instruction budgets on the cores.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.data.generator import DatasetGenerator
from repro.data.query import run_warehouse_query
from repro.data.schema import warehouse_dim_schema, warehouse_fact_schema
from repro.uarch.characteristics import WorkloadCharacteristics
from repro.workloads.base import RunConfig, Workload, WorkloadResult
from repro.workloads.profiles import BENCHMARK_PROFILES
from repro.workloads.runner import BenchmarkHarness

#: Production-scale dataset the simulation layer models (bytes).
MODELED_DATASET_BYTES = 120e9
#: Correctness-layer dataset (rows actually generated and queried).
VALIDATION_FACT_ROWS = 4_000
VALIDATION_DIM_ROWS = 400
#: Stage structure: fraction of bytes moved per I/O stage and
#: per-task instruction multipliers per stage.  Stages 1-2 are
#: I/O-heavy but still burn CPU on decompression/deserialization; the
#: paper notes they are I/O-intensive while stage 3 is
#: computation-intensive.
STAGE1_BYTES_FRACTION = 0.60
STAGE2_BYTES_FRACTION = 0.40
STAGE1_INSTR_MULT = 1.55
STAGE2_INSTR_MULT = 1.05
STAGE3_INSTR_MULT = 1.00
#: Remote-SSD streams: NVMe-over-TCP connections per host; aggregate
#: storage traffic is bounded by the NIC share below.
IO_STREAMS = 16
#: Fraction of NIC bandwidth available to storage traffic.
STORAGE_NET_FRACTION = 0.80
#: Partitions (tasks) per logical core, Spark's default sizing.
TASKS_PER_CORE = 2

#: Per-process memo of the correctness layer: validation is a pure
#: function of the seed (datasets are regenerated from it), and
#: persistent warm-pool workers replay the same seeds sweep after
#: sweep.  Results are treated as read-only by every consumer.
_QUERY_MEMO: dict = {}
_STORAGE_MEMO: dict = {}
_MEMO_MAX = 64
#: The result-table write runs on a fixed reducer count (output
#: partitioning is dataset-defined, not machine-defined), which caps
#: how much of stage 3 benefits from extra cores.
WRITE_REDUCERS = 32
WRITE_INSTR_SHARE = 0.30


class SparkBench(Workload):
    """Three-stage warehouse query on simulated remote NVMe."""

    name = "sparkbench"
    category = "bigdata"
    metric_name = "dataset GB/s (end-to-end query)"

    def __init__(self, chars: Optional[WorkloadCharacteristics] = None) -> None:
        self._chars = chars or BENCHMARK_PROFILES["sparkbench"]

    @property
    def characteristics(self) -> WorkloadCharacteristics:
        return self._chars

    def validate_query(self, seed: int = 2025):
        """Run the real query on a generated dataset (correctness layer)."""
        result = _QUERY_MEMO.get(seed)
        if result is None:
            fact = DatasetGenerator(
                warehouse_fact_schema(), seed=seed
            ).generate(VALIDATION_FACT_ROWS)
            dim = DatasetGenerator(
                warehouse_dim_schema(), seed=seed + 1
            ).generate(VALIDATION_DIM_ROWS)
            result = run_warehouse_query(fact, dim)
            if len(_QUERY_MEMO) >= _MEMO_MAX:
                _QUERY_MEMO.clear()
            _QUERY_MEMO[seed] = result
        return result

    def validate_storage(self, seed: int = 2025) -> float:
        """Column-encode + compress the validation table (real bytes);
        returns the measured table compression ratio."""
        from repro.data.columnar import store_table, table_compression_ratio

        ratio = _STORAGE_MEMO.get(seed)
        if ratio is None:
            fact = DatasetGenerator(
                warehouse_fact_schema(), seed=seed
            ).generate(VALIDATION_FACT_ROWS)
            ratio = table_compression_ratio(store_table(fact))
            if len(_STORAGE_MEMO) >= _MEMO_MAX:
                _STORAGE_MEMO.clear()
            _STORAGE_MEMO[seed] = ratio
        return ratio

    def run(self, config: RunConfig) -> WorkloadResult:
        harness = BenchmarkHarness(config, self._chars)
        env = harness.env
        sku = config.sku
        cores = sku.cpu.logical_cores
        num_tasks = cores * TASKS_PER_CORE

        # I/O bandwidth: NVMe-over-TCP bounded by the NIC.
        storage_gbps = sku.network_gbps * STORAGE_NET_FRACTION
        storage_bytes_per_s = storage_gbps * 1e9 / 8.0

        # Total compute is fixed by the dataset: instructions_per_request
        # is the per-task budget at the reference partitioning (SKU2's
        # 104 tasks); other SKUs split the same total across their own
        # task count.
        REFERENCE_TASKS = 104
        instr_per_task = (
            self._chars.instructions_per_request * REFERENCE_TASKS / num_tasks
        )
        stage_times = {}
        # NVMe-over-TCP streams: a counted resource so aggregate storage
        # traffic never exceeds the NIC share.
        from repro.sim.resources import Resource

        io_streams = Resource(env, capacity=IO_STREAMS)
        per_stream_rate = storage_bytes_per_s / IO_STREAMS

        def io_stage(name: str, stage_bytes: float, instr_mult: float):
            """One I/O stage: tasks stream partition bytes, then burn
            CPU on decompression/deserialization (overlapped across
            tasks)."""
            per_task_bytes = stage_bytes / num_tasks

            def task() -> Generator:
                stream = io_streams.request()
                yield stream
                try:
                    yield env.sleep(per_task_bytes / per_stream_rate)
                finally:
                    io_streams.release(stream)
                yield from harness.burst(instr_per_task * instr_mult)

            start = env.now
            done_events = [pool.submit(task) for _ in range(num_tasks)]
            for event in done_events:
                yield event
            stage_times[name] = env.now - start

        def cpu_stage(name: str):
            """Stage 3: parallel aggregation, then the result write on
            a fixed number of reducers."""
            agg_instr = instr_per_task * STAGE3_INSTR_MULT * (1.0 - WRITE_INSTR_SHARE)
            total_write_instr = (
                instr_per_task * STAGE3_INSTR_MULT * WRITE_INSTR_SHARE * num_tasks
            )
            write_instr_per_reducer = total_write_instr / WRITE_REDUCERS

            def agg_task() -> Generator:
                yield from harness.burst(agg_instr)

            def write_task() -> Generator:
                yield from harness.burst(write_instr_per_reducer)

            start = env.now
            done_events = [pool.submit(agg_task) for _ in range(num_tasks)]
            for event in done_events:
                yield event
            write_events = [pool.submit(write_task) for _ in range(WRITE_REDUCERS)]
            for event in write_events:
                yield event
            stage_times[name] = env.now - start

        # Spark executors: one concurrent task per logical core.
        pool = harness.make_pool("executors", cores)

        def driver() -> Generator:
            yield from io_stage(
                "stage1", MODELED_DATASET_BYTES * STAGE1_BYTES_FRACTION,
                STAGE1_INSTR_MULT,
            )
            yield from io_stage(
                "stage2", MODELED_DATASET_BYTES * STAGE2_BYTES_FRACTION,
                STAGE2_INSTR_MULT,
            )
            yield from cpu_stage("stage3")

        done = env.process(driver())
        env.run()
        assert done.processed or done.triggered

        total_time = sum(stage_times.values())
        stats = harness.scheduler.stats
        cpu_util = stats.busy_seconds / max(1e-9, total_time * cores)
        kernel_util = (stats.kernel_seconds + stats.overhead_seconds) / max(
            1e-9, total_time * cores
        )
        busy = max(stats.busy_seconds, 1e-12)
        efficiency = max(0.05, 1.0 - stats.overhead_seconds / busy)
        throughput = MODELED_DATASET_BYTES / total_time / 1e9  # GB/s
        steady = harness.server.steady_state(min(1.0, cpu_util), efficiency)

        validation = self.validate_query(config.seed)
        return WorkloadResult(
            workload=self._chars.name,
            sku=sku.name,
            kernel=config.kernel_version,
            throughput_rps=throughput,
            latency={
                "count": float(num_tasks * 3),
                "total_query_seconds": total_time,
                "stage1_seconds": stage_times["stage1"],
                "stage2_seconds": stage_times["stage2"],
                "stage3_seconds": stage_times["stage3"],
            },
            cpu_util=min(1.0, cpu_util),
            kernel_util=min(1.0, kernel_util),
            scaling_efficiency=efficiency,
            steady=steady,
            extra={
                "stage3_seconds": stage_times["stage3"],
                "total_query_seconds": total_time,
                "validation_groups": float(validation.groups),
                "validation_joined_rows": float(validation.joined_rows),
                "validation_compression_ratio": self.validate_storage(config.seed),
            },
        )
