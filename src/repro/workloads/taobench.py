"""TaoBench: the TAO-style read-through in-memory cache benchmark.

Architecture (Section 3.2): a Memcached-based server whose requests are
dispatched to *fast* threads on cache hits (return the object) and to
*slow* threads on misses (simulate backend database lookup, create the
object, insert it with SET).  Object sizes, hit rates, and network
throughput are modeled after the TAO production workload.

This model runs a real :class:`~repro.cachelib.readthrough.ReadThroughCache`
over a real LRU store — hit rates emerge from Zipf key popularity vs
cache capacity, not from a configured constant — and dispatches to fast
and slow :class:`~repro.workloads.runner.ThreadPool` instances on a
simulated server.  Because TAO serves ~1M requests/s per server, one
simulated request stands for ``config.batch`` production requests; the
scheduler is charged the full production dispatch rate, which is what
makes the Section 5.3 kernel-contention case study (Figure 16)
reproducible here.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Generator, Optional

from repro.cachelib.memcached import MemcachedServer
from repro.cachelib.readthrough import ReadThroughCache
from repro.rpc.structs import ThriftField, ThriftStruct
from repro.loadgen.generators import Request
from repro.sim.rng import ZipfSampler, lognormal_sampler
from repro.uarch.characteristics import WorkloadCharacteristics
from repro.workloads.base import RunConfig, Workload, WorkloadResult
from repro.workloads.profiles import BENCHMARK_PROFILES
from repro.workloads.runner import BenchmarkHarness

#: Key popularity follows a Zipf law, as measured for TAO.
KEY_SPACE = 200_000
ZIPF_SKEW = 0.99
#: Object sizes: lognormal around TAO's small-object regime.
MEAN_OBJECT_BYTES = 150.0
OBJECT_SIZE_CV = 1.2
#: Cache sized so the steady-state hit rate lands in TAO's ~0.9 regime.
CACHE_CAPACITY_BYTES = 8 * 1024 * 1024
#: Simulated backend (database) latency on the miss path.
BACKEND_LATENCY_MEAN_S = 0.001
#: Instruction split: the miss path creates the object and inserts it.
HIT_INSTR_FRACTION = 0.85
MISS_INSTR_MULTIPLIER = 2.2
#: Production-side scheduling events per request (dispatch + wakeups).
DISPATCHES_PER_HIT = 1
DISPATCHES_PER_MISS = 3
#: TAO is read-dominated; a small write fraction invalidates cached
#: objects (write-invalidate, not write-through), creating the misses
#: the slow path then refills.
WRITE_FRACTION = 0.01
#: Default batching: one simulated request = 200 production requests.
DEFAULT_BATCH = 200
#: Offered load relative to unimpeded capacity (TAO servers run at
#: ~80-86% CPU, not saturation — Table 1 / Figure 9).
OFFERED_FRACTION = 0.92

#: Memoized pre-warm fills.  The fill is a pure function of the cache
#: geometry and the size-stream RNG state at entry, so repeat runs
#: (sweeps, best-of-N benches, repeated suite points in one process)
#: replay the recorded (key, value) pairs and fast-forward the RNG to
#: the recorded end state instead of re-drawing ~50k object sizes —
#: byte-identical by construction.  Values are immutable bytes, safe
#: to share; cache nodes are rebuilt fresh on every restore.
_WARM_MEMO: dict = {}
_WARM_MEMO_MAX = 4


class TaoBench(Workload):
    """Read-through cache benchmark with fast/slow thread pools."""

    name = "taobench"
    category = "caching"
    metric_name = "peak RPS and cache hit rate"

    def __init__(self, chars: Optional[WorkloadCharacteristics] = None) -> None:
        self._chars = chars or BENCHMARK_PROFILES["taobench"]

    @property
    def characteristics(self) -> WorkloadCharacteristics:
        return self._chars

    def run(self, config: RunConfig) -> WorkloadResult:
        if config.batch == 1:
            config = dataclasses.replace(config, batch=DEFAULT_BATCH)
        harness = BenchmarkHarness(config, self._chars)
        env = harness.env
        cores = config.sku.cpu.logical_cores

        # Thread pools: thread-to-core ratio N(10) split across pools.
        fast_pool = harness.make_pool("fast", max(2, cores * 4))
        slow_pool = harness.make_pool("slow", max(2, cores * 4))

        # The real cache: keys sampled Zipf, objects sized lognormal.
        server = MemcachedServer(
            capacity_bytes=CACHE_CAPACITY_BYTES, clock=lambda: env.now
        )
        size_rng = harness.rng.stream("object-sizes")
        size_sampler = lognormal_sampler(MEAN_OBJECT_BYTES, OBJECT_SIZE_CV)

        def backend_fetch(key: str) -> bytes:
            size = int(max(16, min(4096, size_sampler.sample(size_rng))))
            return key.encode("utf-8").ljust(size, b"x")[:size]

        cache = ReadThroughCache(server, backend_fetch)
        zipf = ZipfSampler(KEY_SPACE, ZIPF_SKEW)

        # Pre-warm: production caches run warm; fill with the most
        # popular keys until the byte budget is ~full so the measured
        # hit rate reflects steady state rather than a cold start.
        memo_key = (
            KEY_SPACE,
            CACHE_CAPACITY_BYTES,
            MEAN_OBJECT_BYTES,
            OBJECT_SIZE_CV,
            size_rng.getstate(),
        )
        warmed = _WARM_MEMO.get(memo_key)
        if warmed is None:
            items = []
            rank = 1
            while (
                server.cache.used_bytes < 0.97 * CACHE_CAPACITY_BYTES
                and rank <= KEY_SPACE
            ):
                warm_key = f"tao:{rank}"
                warm_value = backend_fetch(warm_key)
                server.set(warm_key, warm_value)
                items.append((warm_key, warm_value))
                rank += 1
            if len(_WARM_MEMO) >= _WARM_MEMO_MAX:
                _WARM_MEMO.clear()
            _WARM_MEMO[memo_key] = (tuple(items), size_rng.getstate())
        else:
            items, end_state = warmed
            server.warm(items)
            size_rng.setstate(end_state)
        key_rng = harness.rng.stream("keys")
        backend_rng = harness.rng.stream("backend")
        instr = self._chars.instructions_per_request
        hit_instr = instr * HIT_INSTR_FRACTION
        miss_instr = instr * MISS_INSTR_MULTIPLIER

        write_rng = harness.rng.stream("writes")
        writes = [0]

        def handler(request: Request) -> Generator:
            key = f"tao:{zipf.sample(key_rng)}"
            if write_rng.random() < WRITE_FRACTION:
                # Write path: update the backend, invalidate the cached
                # object (TAO's write-invalidate), burn the write cost.
                writes[0] += 1
                cache.invalidate(key)
                yield slow_pool.submit(
                    lambda: harness.burst(
                        miss_instr, dispatches_per_request=DISPATCHES_PER_MISS
                    )
                )
                return
            value = server.cache.peek(key)
            if value is not None:
                # Fast path: serve the cached object.
                server.get(key)  # updates recency + hit stats
                cache.stats.fast_path += 1
                done = fast_pool.submit(
                    lambda: harness.burst(hit_instr)
                )
                yield done
            else:
                # Slow path: dispatch to a slow thread, wait on the
                # backend, create and insert the object.
                cache.stats.slow_path += 1
                server.cache.stats.misses += 1

                def slow_work() -> Generator:
                    yield env.sleep(
                        backend_rng.expovariate(1.0 / BACKEND_LATENCY_MEAN_S)
                    )
                    fetched = backend_fetch(key)
                    server.set(key, fetched)
                    yield from harness.burst(
                        miss_instr,
                        dispatches_per_request=DISPATCHES_PER_MISS - 1,
                    )

                yield slow_pool.submit(slow_work)

        offered = (
            harness.server.capacity_rps() * OFFERED_FRACTION * config.load_scale
        )
        result = harness.run_open_loop(handler, offered_rps=offered)
        result.extra["cache_hit_rate"] = cache.stats.hit_rate
        result.extra["cache_items"] = float(len(server.cache))
        result.extra["offered_rps"] = offered
        result.extra["dispatches_per_request"] = (
            DISPATCHES_PER_HIT * cache.stats.hit_rate
            + DISPATCHES_PER_MISS * (1.0 - cache.stats.hit_rate)
        )
        # Measure real wire bytes for a representative response through
        # the Thrift codec (the RPC datacenter-tax path).
        sample_key = "tao:1"
        sample_value = server.cache.peek(sample_key) or backend_fetch(sample_key)
        result.extra["wire_bytes_per_response"] = float(
            response_wire_bytes(sample_key, sample_value, hit=True)
        )
        result.extra["writes"] = float(writes[0])
        return result


#: The TAO response schema: the real Thrift struct the benchmark's
#: client/server exchange, used to measure wire bytes per response.
TAO_RESPONSE_SCHEMA = ThriftStruct(
    "TaoGetResponse",
    [
        ThriftField(1, "key"),
        ThriftField(2, "value"),
        ThriftField(3, "flags"),
        ThriftField(4, "version"),
        ThriftField(5, "hit"),
    ],
)


def response_wire_bytes(key: str, value: bytes, hit: bool) -> int:
    """Serialized size of one TAO response over the Thrift codec."""
    return TAO_RESPONSE_SCHEMA.wire_size(
        {"key": key, "value": value, "flags": 0, "version": 1, "hit": hit}
    )


def expected_hit_rate() -> float:
    """Analytic hit-rate estimate: Zipf mass of keys the cache holds."""
    keys_held = CACHE_CAPACITY_BYTES / MEAN_OBJECT_BYTES
    zipf = ZipfSampler(KEY_SPACE, ZIPF_SKEW)
    return zipf.hit_fraction(int(min(KEY_SPACE, keys_held)))
