"""VideoTranscodeBench: the media-processing benchmark.

Architecture (Section 3.2): one ffmpeg instance per CPU core, each
resizing a source clip (the Netflix "El Fuente" reference sequence)
into multiple resolutions and encoding with the configured encoder.
Embarrassingly parallel; pushes CPU utilization above 95%.

The model: one encoder task per logical core, each processing a fixed
number of frames through resize + encode instruction budgets.  Three
quality levels reproduce the VideoBench1-3 power points of Figure 10
(higher quality = more instructions per frame and more vector work).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Optional

from repro.uarch.characteristics import WorkloadCharacteristics
from repro.workloads.base import RunConfig, Workload, WorkloadResult
from repro.workloads.profiles import BENCHMARK_PROFILES
from repro.workloads.runner import BenchmarkHarness


@dataclass(frozen=True)
class QualityPreset:
    """One encoder configuration (VideoBench1-3 in Figure 10)."""

    name: str
    instr_multiplier: float
    vector_intensity: float
    frames_per_clip: int = 240


QUALITY_PRESETS: Dict[int, QualityPreset] = {
    1: QualityPreset("fast-1080p", instr_multiplier=0.7, vector_intensity=0.25),
    2: QualityPreset("medium-1080p", instr_multiplier=1.0, vector_intensity=0.40),
    3: QualityPreset("slow-4k", instr_multiplier=1.6, vector_intensity=0.55),
}

#: Resolutions in the resize ladder (output renditions per clip).
RESIZE_LADDER = (1080, 720, 480, 360)
#: Resize cost relative to encode, per rendition.
RESIZE_INSTR_FRACTION = 0.06

#: Per-process memo of the correctness layer: the toy transcode is a
#: pure function of ``(quality, seed)``, and persistent warm-pool
#: workers replay the same seeds sweep after sweep.  Results are
#: treated as read-only by every consumer.
_PIPELINE_MEMO: dict = {}
_MEMO_MAX = 64


class VideoTranscodeBench(Workload):
    """Embarrassingly parallel per-core transcode."""

    name = "videotranscode"
    category = "media"
    metric_name = "frames/s"

    def __init__(
        self,
        chars: Optional[WorkloadCharacteristics] = None,
        quality: int = 2,
    ) -> None:
        if quality not in QUALITY_PRESETS:
            raise ValueError(f"quality must be one of {sorted(QUALITY_PRESETS)}")
        self.quality = quality
        base = chars or BENCHMARK_PROFILES["videotranscode"]
        preset = QUALITY_PRESETS[quality]
        # Quality shifts the vector intensity (and hence power/freq).
        # The default preset keeps the base name so production twins
        # and registries resolve cleanly.
        name = base.name if quality == 2 else f"{base.name}-q{quality}"
        self._chars = base.evolve(
            name=name,
            vector_intensity=min(1.0, preset.vector_intensity),
        )
        self.preset = preset

    @property
    def characteristics(self) -> WorkloadCharacteristics:
        return self._chars

    def validate_pipeline(self, seed: int = 7):
        """Run the real resize+encode pipeline (correctness layer).

        Executes the toy block codec over a synthetic clip at this
        benchmark's quality preset; returns measured bytes and PSNR.
        """
        from repro.media.frames import synthetic_sequence
        from repro.media.pipeline import transcode_ladder

        memo_key = (self.quality, seed)
        result = _PIPELINE_MEMO.get(memo_key)
        if result is None:
            sequence = synthetic_sequence(num_frames=4, seed=seed)
            result = transcode_ladder(sequence, quality=self.quality)
            if len(_PIPELINE_MEMO) >= _MEMO_MAX:
                _PIPELINE_MEMO.clear()
            _PIPELINE_MEMO[memo_key] = result
        return result

    def run(self, config: RunConfig) -> WorkloadResult:
        harness = BenchmarkHarness(config, self._chars)
        env = harness.env
        cores = config.sku.cpu.logical_cores
        preset = self.preset
        clip_instr = (
            self._chars.instructions_per_request * preset.instr_multiplier
        )
        frame_instr = clip_instr / preset.frames_per_clip
        resize_instr = clip_instr * RESIZE_INSTR_FRACTION

        frames_done = [0]

        def encoder_instance() -> Generator:
            # Each instance loops clips until the measurement ends.
            while True:
                for _ in RESIZE_LADDER:
                    yield from harness.burst(resize_instr / len(RESIZE_LADDER))
                # Encode in frame batches so utilization is smooth.
                batch = 24
                for _ in range(preset.frames_per_clip // batch):
                    yield from harness.burst(frame_instr * batch)
                    frames_done[0] += batch

        for _ in range(cores):
            env.process(encoder_instance())

        env.run(until=config.warmup_seconds)
        harness.scheduler.stats.reset(env.now)
        frames_before = frames_done[0]
        env.run(until=config.warmup_seconds + config.measure_seconds)
        frames = frames_done[0] - frames_before

        stats = harness.scheduler.stats
        cpu_util = stats.cpu_util(env.now, cores)
        kernel_util = stats.kernel_util(env.now, cores)
        busy = max(stats.busy_seconds, 1e-12)
        efficiency = max(0.05, 1.0 - stats.overhead_seconds / busy)
        fps = frames / config.measure_seconds
        steady = harness.server.steady_state(cpu_util, efficiency)
        validation = self.validate_pipeline(config.seed)
        return WorkloadResult(
            workload=self._chars.name,
            sku=config.sku_name,
            kernel=config.kernel_version,
            throughput_rps=fps,
            latency={"count": float(frames)},
            cpu_util=cpu_util,
            kernel_util=kernel_util,
            scaling_efficiency=efficiency,
            steady=steady,
            extra={
                "quality": float(self.quality),
                "frames_encoded": float(frames),
                "renditions": float(len(RESIZE_LADDER)),
                "validation_psnr_db": validation.mean_psnr_db,
                "validation_bytes": float(validation.total_compressed_bytes),
            },
        )
