"""Compression codecs.

Production uses zstd and Snappy; here the heavy codec is backed by
zlib (stdlib) and the light codec is a real LZ77-family implementation
in the spirit of Snappy — fast, byte-oriented, favouring speed over
ratio.  Both satisfy the same :class:`CompressionCodec` interface and
round-trip losslessly, which property tests verify.
"""

from __future__ import annotations

import abc
import struct
import zlib
from typing import Dict


class CompressionError(Exception):
    """Raised on corrupt compressed data."""


class CompressionCodec(abc.ABC):
    """Interface shared by all codecs."""

    name: str = "abstract"

    @abc.abstractmethod
    def compress(self, data: bytes) -> bytes:
        """Compress ``data`` losslessly."""

    @abc.abstractmethod
    def decompress(self, data: bytes) -> bytes:
        """Invert :meth:`compress`."""

    def ratio(self, data: bytes) -> float:
        """Compression ratio (original / compressed); >= values are better."""
        if not data:
            return 1.0
        return len(data) / max(1, len(self.compress(data)))


class ZlibCodec(CompressionCodec):
    """Deflate-backed codec standing in for zstd."""

    name = "zlib"

    def __init__(self, level: int = 6) -> None:
        if not 1 <= level <= 9:
            raise ValueError("zlib level must be in 1..9")
        self.level = level

    def compress(self, data: bytes) -> bytes:
        return zlib.compress(data, self.level)

    def decompress(self, data: bytes) -> bytes:
        try:
            return zlib.decompress(data)
        except zlib.error as exc:
            raise CompressionError(str(exc)) from exc


class SnappyLikeCodec(CompressionCodec):
    """A real greedy LZ77 codec with Snappy-style framing.

    Format: a u32 uncompressed length, then a sequence of tagged
    elements — literals (tag 0: u16 length + bytes) and copies (tag 1:
    u16 offset + u16 length).  Matching uses a 4-byte-prefix hash table
    and greedy extension, the same strategy Snappy uses.
    """

    name = "snappy-like"
    _MIN_MATCH = 4

    def compress(self, data: bytes) -> bytes:
        out = bytearray(struct.pack("!I", len(data)))
        n = len(data)
        table: Dict[bytes, int] = {}
        i = 0
        literal_start = 0

        def flush_literal(end: int) -> None:
            start = literal_start
            while start < end:
                chunk = data[start : min(end, start + 0xFFFF)]
                out.append(0)
                out.extend(struct.pack("!H", len(chunk)))
                out.extend(chunk)
                start += len(chunk)

        while i + self._MIN_MATCH <= n:
            key = data[i : i + self._MIN_MATCH]
            candidate = table.get(key)
            table[key] = i
            if candidate is not None and i - candidate <= 0xFFFF:
                # Extend the match greedily.
                length = self._MIN_MATCH
                max_len = min(n - i, 0xFFFF)
                while (
                    length < max_len
                    and data[candidate + length] == data[i + length]
                ):
                    length += 1
                flush_literal(i)
                out.append(1)
                out.extend(struct.pack("!HH", i - candidate, length))
                i += length
                literal_start = i
            else:
                i += 1
        flush_literal(n)
        return bytes(out)

    def decompress(self, data: bytes) -> bytes:
        if len(data) < 4:
            raise CompressionError("truncated header")
        (expected_len,) = struct.unpack("!I", data[:4])
        out = bytearray()
        pos = 4
        n = len(data)
        while pos < n:
            tag = data[pos]
            pos += 1
            if tag == 0:
                if pos + 2 > n:
                    raise CompressionError("truncated literal header")
                (length,) = struct.unpack("!H", data[pos : pos + 2])
                pos += 2
                if pos + length > n:
                    raise CompressionError("truncated literal body")
                out.extend(data[pos : pos + length])
                pos += length
            elif tag == 1:
                if pos + 4 > n:
                    raise CompressionError("truncated copy element")
                offset, length = struct.unpack("!HH", data[pos : pos + 4])
                pos += 4
                if offset == 0 or offset > len(out):
                    raise CompressionError(f"bad copy offset {offset}")
                start = len(out) - offset
                # Overlapping copies are legal (run-length encoding).
                for k in range(length):
                    out.append(out[start + k])
            else:
                raise CompressionError(f"unknown element tag {tag}")
        if len(out) != expected_len:
            raise CompressionError(
                f"length mismatch: header says {expected_len}, got {len(out)}"
            )
        return bytes(out)


_CODECS = {
    "zlib": ZlibCodec,
    "snappy-like": SnappyLikeCodec,
}


def get_codec(name: str) -> CompressionCodec:
    """Instantiate a codec by name (``zlib`` or ``snappy-like``)."""
    try:
        return _CODECS[name]()
    except KeyError:
        known = ", ".join(sorted(_CODECS))
        raise KeyError(f"unknown codec {name!r}; known: {known}") from None
