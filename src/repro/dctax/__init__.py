"""Datacenter-tax libraries and accounting.

The "datacenter tax" — RPC, compression, serialization, hashing,
crypto, memory operations, thread management — consumes 18-82% of CPU
cycles across Meta's fleet (Section 3.2, Figure 12).  This package
provides real, executable implementations of each tax category (used
by the microbenchmarks and the workload payload paths) and the cycle
accounting that reproduces Figure 12's application-logic vs tax
breakdown.
"""

from repro.dctax.compression import (
    CompressionCodec,
    SnappyLikeCodec,
    ZlibCodec,
    get_codec,
)
from repro.dctax.hashing import fingerprint64, hash_bytes, consistent_bucket
from repro.dctax.serialization import serialize_record, deserialize_record
from repro.dctax.crypto import TlsSessionModel
from repro.dctax.memory_ops import checked_copy, scatter_gather
from repro.dctax.accounting import CycleAccountant, TaxBreakdown

__all__ = [
    "CompressionCodec",
    "ZlibCodec",
    "SnappyLikeCodec",
    "get_codec",
    "hash_bytes",
    "fingerprint64",
    "consistent_bucket",
    "serialize_record",
    "deserialize_record",
    "TlsSessionModel",
    "checked_copy",
    "scatter_gather",
    "CycleAccountant",
    "TaxBreakdown",
]
