"""Hashing tax: fast non-cryptographic hashes and consistent bucketing.

Production caches hash every key (shard selection, cache indexing);
the microbenchmarks measure these functions and TaoBench uses them on
its key path.  ``fingerprint64`` is a real FNV-1a-with-avalanche
implementation, ``consistent_bucket`` is Lamping & Veach's jump
consistent hash — the algorithm used for shard placement at scale.
"""

from __future__ import annotations

import hashlib

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF


def fingerprint64(data: bytes) -> int:
    """64-bit FNV-1a with a final avalanche mix (xor-shift-multiply)."""
    h = _FNV_OFFSET
    for byte in data:
        h ^= byte
        h = (h * _FNV_PRIME) & _MASK64
    # Avalanche: based on splitmix64's finalizer.
    h ^= h >> 30
    h = (h * 0xBF58476D1CE4E5B9) & _MASK64
    h ^= h >> 27
    h = (h * 0x94D049BB133111EB) & _MASK64
    h ^= h >> 31
    return h


def hash_bytes(data: bytes, algorithm: str = "sha256") -> bytes:
    """Cryptographic digest via hashlib (the heavy hashing tax path)."""
    try:
        digest = hashlib.new(algorithm)
    except ValueError as exc:
        raise ValueError(f"unknown hash algorithm {algorithm!r}") from exc
    digest.update(data)
    return digest.digest()


def consistent_bucket(key: int, num_buckets: int) -> int:
    """Jump consistent hash: map ``key`` to a bucket in [0, num_buckets).

    Guarantees that growing the bucket count moves only ~1/n of keys —
    the property shard placement relies on.
    """
    if num_buckets <= 0:
        raise ValueError("num_buckets must be positive")
    key &= _MASK64
    b, j = -1, 0
    while j < num_buckets:
        b = j
        key = (key * 2862933555777941757 + 1) & _MASK64
        j = int((b + 1) * (1 << 31) / ((key >> 33) + 1))
    return b
