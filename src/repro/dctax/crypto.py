"""Crypto tax: a TLS-record model in the style of Fizz.

FeedSim's tax stack includes TLS (OpenSSL/libsodium/Fizz).  This model
performs real work on the record path — HKDF-style key derivation and
HMAC-based record protection via hashlib — so the crypto tax is
executable and measurable without a full TLS implementation.
"""

from __future__ import annotations

import hashlib
import hmac
import struct


class CryptoError(Exception):
    """Raised on authentication failure."""


#: Precompiled record-header packers (per-message invariants).
_PACK_U8 = struct.Struct("!B").pack
_PACK_SEQ = struct.Struct("!Q").pack
_UNPACK_SEQ = struct.Struct("!Q").unpack
_PACK_BLOCK = struct.Struct("!QI").pack


def _xor_bytes(data: bytes, stream: bytes) -> bytes:
    """XOR two equal-length byte strings via big-int arithmetic — the
    same bytes a per-character ``zip`` loop produces, without a Python
    frame per byte."""
    return (int.from_bytes(data, "big") ^ int.from_bytes(stream, "big")).to_bytes(
        len(data), "big"
    )


def hkdf_extract_expand(secret: bytes, salt: bytes, length: int = 32) -> bytes:
    """HKDF (RFC 5869) with SHA-256: extract then expand to ``length``."""
    if length <= 0 or length > 255 * 32:
        raise ValueError("length out of HKDF range")
    prk = hmac.new(salt or b"\x00" * 32, secret, hashlib.sha256).digest()
    blocks = []
    produced = 0
    prev = b""
    counter = 1
    while produced < length:
        prev = hmac.new(prk, prev + _PACK_U8(counter), hashlib.sha256).digest()
        blocks.append(prev)
        produced += len(prev)
        counter += 1
    return b"".join(blocks)[:length]


class TlsSessionModel:
    """Record protection for one session: seal/open with HMAC-SHA256.

    A stand-in for AEAD: the MAC is real, the "encryption" is a keyed
    XOR stream (keystream from HKDF over the sequence number), which
    costs realistic per-byte work while staying dependency-free.
    """

    def __init__(self, master_secret: bytes) -> None:
        if len(master_secret) < 16:
            raise ValueError("master_secret must be at least 16 bytes")
        self._write_key = hkdf_extract_expand(master_secret, b"write", 32)
        self._mac_key = hkdf_extract_expand(master_secret, b"mac", 32)
        # HMAC's key schedule (two key-pad hash blocks) is a session
        # invariant; precompute it once and clone per record instead of
        # re-running it on every seal/open.  ``copy()`` yields digests
        # identical to a fresh ``hmac.new`` with the same key.
        self._mac_proto = hmac.new(self._mac_key, digestmod=hashlib.sha256)
        self._seq = 0

    def _mac(self, data: bytes) -> bytes:
        mac = self._mac_proto.copy()
        mac.update(data)
        return mac.digest()

    def _keystream(self, seq: int, length: int) -> bytes:
        blocks = []
        produced = 0
        counter = 0
        write_key = self._write_key
        while produced < length:
            block = hashlib.sha256(write_key + _PACK_BLOCK(seq, counter)).digest()
            blocks.append(block)
            produced += len(block)
            counter += 1
        return b"".join(blocks)[:length]

    def seal(self, plaintext: bytes) -> bytes:
        """Protect one record: returns seq || ciphertext || mac."""
        seq = self._seq
        self._seq += 1
        stream = self._keystream(seq, len(plaintext))
        ciphertext = _xor_bytes(plaintext, stream)
        header = _PACK_SEQ(seq)
        mac = self._mac(header + ciphertext)
        return header + ciphertext + mac

    def open(self, record: bytes) -> bytes:
        """Verify and decrypt one record produced by :meth:`seal`."""
        if len(record) < 8 + 32:
            raise CryptoError("record too short")
        seq = _UNPACK_SEQ(record[:8])[0]
        ciphertext, mac = record[8:-32], record[-32:]
        expected = self._mac(record[:8] + ciphertext)
        if not hmac.compare_digest(mac, expected):
            raise CryptoError("record authentication failed")
        stream = self._keystream(seq, len(ciphertext))
        return _xor_bytes(ciphertext, stream)
