"""Crypto tax: a TLS-record model in the style of Fizz.

FeedSim's tax stack includes TLS (OpenSSL/libsodium/Fizz).  This model
performs real work on the record path — HKDF-style key derivation and
HMAC-based record protection via hashlib — so the crypto tax is
executable and measurable without a full TLS implementation.
"""

from __future__ import annotations

import hashlib
import hmac
import struct


class CryptoError(Exception):
    """Raised on authentication failure."""


def hkdf_extract_expand(secret: bytes, salt: bytes, length: int = 32) -> bytes:
    """HKDF (RFC 5869) with SHA-256: extract then expand to ``length``."""
    if length <= 0 or length > 255 * 32:
        raise ValueError("length out of HKDF range")
    prk = hmac.new(salt or b"\x00" * 32, secret, hashlib.sha256).digest()
    blocks = []
    prev = b""
    counter = 1
    while sum(len(b) for b in blocks) < length:
        prev = hmac.new(prk, prev + struct.pack("!B", counter), hashlib.sha256).digest()
        blocks.append(prev)
        counter += 1
    return b"".join(blocks)[:length]


class TlsSessionModel:
    """Record protection for one session: seal/open with HMAC-SHA256.

    A stand-in for AEAD: the MAC is real, the "encryption" is a keyed
    XOR stream (keystream from HKDF over the sequence number), which
    costs realistic per-byte work while staying dependency-free.
    """

    def __init__(self, master_secret: bytes) -> None:
        if len(master_secret) < 16:
            raise ValueError("master_secret must be at least 16 bytes")
        self._write_key = hkdf_extract_expand(master_secret, b"write", 32)
        self._mac_key = hkdf_extract_expand(master_secret, b"mac", 32)
        self._seq = 0

    def _keystream(self, seq: int, length: int) -> bytes:
        blocks = []
        counter = 0
        while sum(len(b) for b in blocks) < length:
            blocks.append(
                hashlib.sha256(
                    self._write_key + struct.pack("!QI", seq, counter)
                ).digest()
            )
            counter += 1
        return b"".join(blocks)[:length]

    def seal(self, plaintext: bytes) -> bytes:
        """Protect one record: returns seq || ciphertext || mac."""
        seq = self._seq
        self._seq += 1
        stream = self._keystream(seq, len(plaintext))
        ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
        mac = hmac.new(
            self._mac_key, struct.pack("!Q", seq) + ciphertext, hashlib.sha256
        ).digest()
        return struct.pack("!Q", seq) + ciphertext + mac

    def open(self, record: bytes) -> bytes:
        """Verify and decrypt one record produced by :meth:`seal`."""
        if len(record) < 8 + 32:
            raise CryptoError("record too short")
        seq = struct.unpack("!Q", record[:8])[0]
        ciphertext, mac = record[8:-32], record[-32:]
        expected = hmac.new(
            self._mac_key, record[:8] + ciphertext, hashlib.sha256
        ).digest()
        if not hmac.compare_digest(mac, expected):
            raise CryptoError("record authentication failed")
        stream = self._keystream(seq, len(ciphertext))
        return bytes(c ^ s for c, s in zip(ciphertext, stream))
