"""Serialization tax helpers.

Thin convenience layer over the Thrift codec in :mod:`repro.rpc`: turns
arbitrary flat records into wire bytes and back.  The microbenchmarks
measure this path, and workload models use it to produce realistic
request/response byte sizes.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.rpc.protocol import (
    BinaryProtocolReader,
    BinaryProtocolWriter,
    read_struct_fields,
    write_struct_fields,
)


def serialize_record(record: Dict[str, Any]) -> bytes:
    """Serialize a flat record (str keys, scalar/list/dict values).

    Field ids are assigned by sorted key order; the key table travels
    in field 1 so deserialization is self-describing.
    """
    keys = sorted(record)
    payload: Dict[int, Any] = {1: keys}
    for index, key in enumerate(keys):
        payload[index + 2] = record[key]
    writer = BinaryProtocolWriter()
    write_struct_fields(writer, payload)
    return writer.getvalue()


def deserialize_record(data: bytes) -> Dict[str, Any]:
    """Invert :func:`serialize_record`."""
    reader = BinaryProtocolReader(data)
    fields = read_struct_fields(reader)
    raw_keys = fields.get(1, [])
    keys = [k.decode("utf-8") if isinstance(k, bytes) else k for k in raw_keys]
    out: Dict[str, Any] = {}
    for index, key in enumerate(keys):
        if index + 2 in fields:
            value = fields[index + 2]
            out[key] = value
    return out
