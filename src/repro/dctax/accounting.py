"""Cycle accounting: application logic vs datacenter tax.

Reproduces Figure 12's breakdown of CPU cycles across hot functions.
A :class:`CycleAccountant` charges cycles to named categories as a
workload runs; :class:`TaxBreakdown` summarizes the result in the
paper's application-vs-tax terms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.uarch.characteristics import TaxProfile


@dataclass
class CycleAccountant:
    """Accumulates cycles per category during a run."""

    cycles: Dict[str, float] = field(default_factory=dict)

    def charge(self, category: str, amount: float) -> None:
        """Add ``amount`` cycles to ``category`` (``app:`` prefix =
        application logic, anything else = tax)."""
        if amount < 0:
            raise ValueError("cycle amounts must be non-negative")
        self.cycles[category] = self.cycles.get(category, 0.0) + amount

    def charge_profile(self, profile: TaxProfile, total_cycles: float) -> None:
        """Distribute ``total_cycles`` according to a tax profile."""
        if total_cycles < 0:
            raise ValueError("total_cycles must be non-negative")
        for category, share in profile.shares.items():
            if share > 0:
                self.charge(category, total_cycles * share)

    def breakdown(self) -> "TaxBreakdown":
        total = sum(self.cycles.values())
        if total <= 0:
            return TaxBreakdown(shares={}, app_fraction=0.0, tax_fraction=0.0)
        shares = {k: v / total for k, v in self.cycles.items()}
        tax = sum(v for k, v in shares.items() if not k.startswith("app:"))
        return TaxBreakdown(
            shares=shares, app_fraction=1.0 - tax, tax_fraction=tax
        )


@dataclass(frozen=True)
class TaxBreakdown:
    """Normalized cycle shares with app/tax rollups."""

    shares: Dict[str, float]
    app_fraction: float
    tax_fraction: float

    def share(self, category: str) -> float:
        return self.shares.get(category, 0.0)

    def top_categories(self, count: int = 5) -> Dict[str, float]:
        """The ``count`` largest categories, by share."""
        ordered = sorted(self.shares.items(), key=lambda kv: -kv[1])
        return dict(ordered[:count])
