"""Memory-operation tax: copy/move primitives with integrity checks.

Kanev et al. report memcpy/memmove among the largest single tax items.
These helpers do real byte movement (the microbenchmarks time them) and
add the checks a production memcpy wrapper performs.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def checked_copy(src: bytes, max_bytes: int = 1 << 30) -> bytes:
    """Copy a buffer with a size guard (the hardened-memcpy pattern)."""
    if len(src) > max_bytes:
        raise ValueError(f"copy of {len(src)} bytes exceeds guard {max_bytes}")
    return bytes(bytearray(src))


def scatter_gather(buffers: Sequence[bytes]) -> Tuple[bytes, List[int]]:
    """Gather an iovec into one buffer; returns (joined, offsets).

    The offsets list allows the inverse :func:`split_at_offsets`.
    """
    offsets: List[int] = []
    position = 0
    for buf in buffers:
        offsets.append(position)
        position += len(buf)
    return b"".join(buffers), offsets


def split_at_offsets(data: bytes, offsets: Sequence[int]) -> List[bytes]:
    """Invert :func:`scatter_gather`."""
    if list(offsets) != sorted(offsets):
        raise ValueError("offsets must be non-decreasing")
    if offsets and (offsets[0] != 0 or offsets[-1] > len(data)):
        raise ValueError("offsets out of range")
    out: List[bytes] = []
    for i, start in enumerate(offsets):
        end = offsets[i + 1] if i + 1 < len(offsets) else len(data)
        out.append(data[start:end])
    return out
