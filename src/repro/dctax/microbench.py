"""Datacenter-tax microbenchmarks.

Section 3.2: "we model these functions as a set of microbenchmarks...
if a server SKU performs poorly on them, it is likely to exhibit
subpar performance for many applications."  Each microbenchmark here
runs real code from this package over a deterministic payload and
reports operations/second; ``benchmarks/test_tax_microbench.py`` wires
them into pytest-benchmark.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.dctax.compression import SnappyLikeCodec, ZlibCodec
from repro.dctax.crypto import TlsSessionModel
from repro.dctax.hashing import consistent_bucket, fingerprint64, hash_bytes
from repro.dctax.memory_ops import checked_copy, scatter_gather, split_at_offsets
from repro.dctax.serialization import deserialize_record, serialize_record
from repro.rpc.compact import decode_compact_struct, encode_compact_struct
from repro.rpc.protocol import decode_message, encode_message


def make_payload(size: int, seed: int = 7, entropy: float = 0.4) -> bytes:
    """Deterministic mixed-entropy payload.

    ``entropy`` controls the random-byte fraction; the rest is a
    repeating template, giving compressors something realistic to find.
    """
    if size < 0:
        raise ValueError("size must be non-negative")
    if not 0.0 <= entropy <= 1.0:
        raise ValueError("entropy must be in [0, 1]")
    rng = random.Random(seed)
    template = b"the quick brown fox jumps over the lazy dog 0123456789 "
    out = bytearray()
    while len(out) < size:
        if rng.random() < entropy:
            out.extend(rng.randbytes(16))
        else:
            out.extend(template)
    return bytes(out[:size])


@dataclass(frozen=True)
class MicrobenchResult:
    name: str
    operations: int
    elapsed_seconds: float

    @property
    def ops_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.operations / self.elapsed_seconds


def _timed(name: str, fn: Callable[[], None], operations: int) -> MicrobenchResult:
    start = time.perf_counter()
    fn()
    return MicrobenchResult(name, operations, time.perf_counter() - start)


def bench_rpc_roundtrip(iterations: int = 200, payload_size: int = 512) -> MicrobenchResult:
    """Encode + decode a Thrift message per iteration."""
    body = make_payload(payload_size).decode("latin-1")

    def run() -> None:
        for i in range(iterations):
            wire = encode_message("getFeed", {1: i, 2: body, 3: [1, 2, 3]}, seqid=i)
            decode_message(wire)

    return _timed("rpc_roundtrip", run, iterations)


def bench_rpc_compact(iterations: int = 300) -> MicrobenchResult:
    """Encode + decode a compact-protocol struct per iteration."""
    fields = {1: 123456, 2: "user_42", 3: [1, 2, 3, 4], 5: {"score": 87}}

    def run() -> None:
        for _ in range(iterations):
            decode_compact_struct(encode_compact_struct(fields))

    return _timed("rpc_compact", run, iterations)


def bench_compression(
    iterations: int = 20, payload_size: int = 16384, codec_name: str = "zlib"
) -> MicrobenchResult:
    """Compress + decompress a mixed-entropy buffer per iteration."""
    codec = ZlibCodec() if codec_name == "zlib" else SnappyLikeCodec()
    payload = make_payload(payload_size)

    def run() -> None:
        for _ in range(iterations):
            codec.decompress(codec.compress(payload))

    return _timed(f"compression_{codec.name}", run, iterations)


def bench_hashing(iterations: int = 500, key_size: int = 64) -> MicrobenchResult:
    """Fingerprint + shard-bucket a key per iteration."""
    keys: List[bytes] = [make_payload(key_size, seed=i) for i in range(64)]

    def run() -> None:
        for i in range(iterations):
            h = fingerprint64(keys[i % len(keys)])
            consistent_bucket(h, 128)

    return _timed("hashing", run, iterations)


def bench_crypto_digest(iterations: int = 200, payload_size: int = 4096) -> MicrobenchResult:
    """SHA-256 a buffer per iteration."""
    payload = make_payload(payload_size)

    def run() -> None:
        for _ in range(iterations):
            hash_bytes(payload, "sha256")

    return _timed("crypto_digest", run, iterations)


def bench_tls_record(iterations: int = 50, payload_size: int = 4096) -> MicrobenchResult:
    """Seal + open a TLS record per iteration."""
    session = TlsSessionModel(b"0123456789abcdef0123456789abcdef")
    payload = make_payload(payload_size)

    def run() -> None:
        for _ in range(iterations):
            session.open(session.seal(payload))

    return _timed("tls_record", run, iterations)


def bench_serialization(iterations: int = 200) -> MicrobenchResult:
    """Serialize + deserialize a feed-story-like record per iteration."""
    record = {
        "story_id": 123456789,
        "author": "user_42",
        "ranking_score": 0.87,
        "media_ids": [10, 20, 30, 40],
        "flags": {"sponsored": False, "pinned": True},
    }

    def run() -> None:
        for _ in range(iterations):
            deserialize_record(serialize_record(record))

    return _timed("serialization", run, iterations)


def bench_memory_copy(iterations: int = 50, payload_size: int = 65536) -> MicrobenchResult:
    """checked_copy + scatter/gather round trip per iteration."""
    chunks = [make_payload(payload_size // 8, seed=i) for i in range(8)]

    def run() -> None:
        for _ in range(iterations):
            joined, offsets = scatter_gather(chunks)
            checked_copy(joined)
            split_at_offsets(joined, offsets)

    return _timed("memory_copy", run, iterations)


#: Registry used by the CLI and the pytest-benchmark harness.
ALL_MICROBENCHMARKS: Dict[str, Callable[[], MicrobenchResult]] = {
    "rpc_roundtrip": bench_rpc_roundtrip,
    "rpc_compact": bench_rpc_compact,
    "compression_zlib": lambda: bench_compression(codec_name="zlib"),
    "compression_snappy": lambda: bench_compression(codec_name="snappy-like"),
    "hashing": bench_hashing,
    "crypto_digest": bench_crypto_digest,
    "tls_record": bench_tls_record,
    "serialization": bench_serialization,
    "memory_copy": bench_memory_copy,
}


def run_all() -> Dict[str, MicrobenchResult]:
    """Run every tax microbenchmark once."""
    return {name: fn() for name, fn in ALL_MICROBENCHMARKS.items()}
