"""Workload characteristics vectors.

A :class:`WorkloadCharacteristics` instance is the contract between a
workload model (:mod:`repro.workloads`) and the microarchitecture model
(:mod:`repro.uarch.projection`).  Every field corresponds to a cause
the paper identifies for a microarchitecture-level effect:

* ``code_footprint_kb`` — instruction working set; drives L1I misses
  and hence frontend stalls (Section 4.2: SPEC's small codebase is why
  it has far fewer frontend stalls).
* ``switches_per_kinstr`` — context switches per kilo-instruction;
  the paper explains TaoBench's high L1I MPKI despite a small codebase
  by its thread-to-core oversubscription (Section 4.3, Fig. 8).
* ``data_reuse_kb`` / ``locality_beta`` — parameters of the data
  miss-ratio curve; drive backend stalls and memory bandwidth.
* ``kernel_frac`` — kernel share of busy cycles (Fig. 9).
* ``vector_intensity`` — wide-vector share; drives frequency
  throttling (Fig. 11's low Spark frequency).
* ``tax_profile`` — the datacenter-tax cycle composition (Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional


#: Canonical datacenter-tax categories used by Figure 12.  Categories
#: starting with ``app:`` are application logic; the rest are tax.
TAX_CATEGORIES = (
    "rpc",
    "compression",
    "serialization",
    "kvstore",
    "threadmanager",
    "memory",
    "benchmark_clients",
    "io_preparation",
    "hashing",
    "others",
)


@dataclass(frozen=True)
class TaxProfile:
    """CPU-cycle composition: application logic vs datacenter tax.

    ``shares`` maps category name to its fraction of total CPU cycles.
    Application-logic categories are prefixed ``app:`` (e.g.
    ``app:ranking``); everything else counts as tax.  Shares must sum
    to 1.
    """

    shares: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.shares:
            object.__setattr__(self, "shares", {"app:generic": 1.0})
            return
        total = sum(self.shares.values())
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"tax shares must sum to 1.0, got {total}")
        if any(v < 0 for v in self.shares.values()):
            raise ValueError("tax shares must be non-negative")

    @property
    def tax_fraction(self) -> float:
        """Total fraction of cycles that is datacenter tax."""
        return sum(v for k, v in self.shares.items() if not k.startswith("app:"))

    @property
    def app_fraction(self) -> float:
        """Total fraction of cycles that is application logic."""
        return 1.0 - self.tax_fraction

    def share(self, category: str) -> float:
        return self.shares.get(category, 0.0)

    def scaled_tax(self, factor: float) -> "TaxProfile":
        """Return a profile with all tax categories scaled by ``factor``.

        Application categories absorb the difference proportionally.
        Used by the tax-inclusion ablation study.
        """
        if factor < 0:
            raise ValueError("factor must be non-negative")
        tax = {k: v * factor for k, v in self.shares.items() if not k.startswith("app:")}
        app_total_old = self.app_fraction
        app_total_new = 1.0 - sum(tax.values())
        if app_total_new < 0:
            raise ValueError("scaled tax exceeds 100% of cycles")
        out = dict(tax)
        for key, value in self.shares.items():
            if key.startswith("app:"):
                if app_total_old > 0:
                    out[key] = value / app_total_old * app_total_new
                else:
                    out[key] = 0.0
        if app_total_old == 0 and app_total_new > 0:
            out["app:generic"] = app_total_new
        return TaxProfile(out)


@dataclass(frozen=True)
class WorkloadCharacteristics:
    """Microarchitecture-relevant description of one workload.

    Calibration: footprints and rates are chosen so that, run through
    :class:`repro.uarch.projection.ProjectionEngine` on SKU2, the model
    reproduces the workload's published Figure 4-12 values.
    """

    name: str
    category: str
    # --- instruction side -------------------------------------------------
    code_footprint_kb: float
    switches_per_kinstr: float = 0.0
    # --- data side --------------------------------------------------------
    mem_refs_per_kinstr: float = 300.0
    data_reuse_kb: float = 64.0
    locality_beta: float = 0.55
    memory_level_parallelism: float = 10.0
    # --- control flow and execution ---------------------------------------
    branch_per_kinstr: float = 170.0
    branch_mispredict_rate: float = 0.02
    dependency_cpk: float = 50.0
    # Frontend shaping beyond raw L1I misses: ``frontend_overlap`` in
    # (0, 1] scales down the per-miss bubble when misses overlap other
    # stalls or hit close caches (high-context-switch workloads);
    # ``frontend_extra_cpk`` adds ITLB/BTB/decode bubbles that are not
    # L1I misses (large-codebase web workloads).
    frontend_overlap: float = 1.0
    frontend_extra_cpk: float = 0.0
    vector_intensity: float = 0.0
    smt_friendly: float = 1.0
    # --- system behaviour ---------------------------------------------------
    kernel_frac: float = 0.05
    instructions_per_request: float = 1e6
    thread_core_ratio: float = 1.0
    rpc_fanout: float = 0.0
    network_bytes_per_request: float = 4096.0
    serial_fraction: float = 0.0
    platform_activity: float = 0.0
    # --- composition --------------------------------------------------------
    tax_profile: TaxProfile = field(default_factory=TaxProfile)

    def __post_init__(self) -> None:
        positive = {
            "code_footprint_kb": self.code_footprint_kb,
            "mem_refs_per_kinstr": self.mem_refs_per_kinstr,
            "data_reuse_kb": self.data_reuse_kb,
            "memory_level_parallelism": self.memory_level_parallelism,
            "instructions_per_request": self.instructions_per_request,
            "thread_core_ratio": self.thread_core_ratio,
        }
        for label, value in positive.items():
            if value <= 0:
                raise ValueError(f"{label} must be positive, got {value}")
        fractions = {
            "branch_mispredict_rate": self.branch_mispredict_rate,
            "vector_intensity": self.vector_intensity,
            "kernel_frac": self.kernel_frac,
            "serial_fraction": self.serial_fraction,
            "platform_activity": self.platform_activity,
        }
        for label, value in fractions.items():
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{label} must be in [0,1], got {value}")
        if not 0.0 < self.locality_beta <= 2.0:
            raise ValueError("locality_beta must be in (0, 2]")
        if self.switches_per_kinstr < 0:
            raise ValueError("switches_per_kinstr must be non-negative")
        if not 0.0 < self.frontend_overlap <= 1.0:
            raise ValueError("frontend_overlap must be in (0, 1]")
        if self.frontend_extra_cpk < 0:
            raise ValueError("frontend_extra_cpk must be non-negative")

    def evolve(self, **changes: object) -> "WorkloadCharacteristics":
        """Return a copy with the given fields replaced.

        Used to derive production counterparts from benchmark models
        and for ablation studies.
        """
        return replace(self, **changes)
