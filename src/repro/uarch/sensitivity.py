"""SKU-parameter sensitivity analysis (vendor guidance, Section 5.2).

CPU vendors run DCPerf to decide which microarchitecture knob to turn
next — the case study's vendor landed ~10 optimizations (cache
replacement, uncore frequency, TLB policies) worth 38% on the web
workload.  This module automates the first step of that loop: perturb
one hardware parameter at a time and measure each workload's projected
response, producing the tornado table that says *web wants I-cache,
analytics wants memory bandwidth*.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List

from repro.hw.sku import ServerSku
from repro.uarch.characteristics import WorkloadCharacteristics
from repro.uarch.projection import ProjectionEngine

#: A knob transforms a SKU into a perturbed variant.
Knob = Callable[[ServerSku, float], ServerSku]


def _scale_l1i(sku: ServerSku, factor: float) -> ServerSku:
    caches = sku.cpu.caches
    l1i = replace(caches.l1i, size_kb=caches.l1i.size_kb * factor)
    return replace(sku, cpu=replace(sku.cpu, caches=replace(caches, l1i=l1i)))


def _scale_l2(sku: ServerSku, factor: float) -> ServerSku:
    caches = sku.cpu.caches
    l2 = replace(caches.l2, size_kb=caches.l2.size_kb * factor)
    return replace(sku, cpu=replace(sku.cpu, caches=replace(caches, l2=l2)))


def _scale_llc(sku: ServerSku, factor: float) -> ServerSku:
    caches = sku.cpu.caches
    llc = replace(caches.llc, size_kb=caches.llc.size_kb * factor)
    return replace(sku, cpu=replace(sku.cpu, caches=replace(caches, llc=llc)))


def _scale_membw(sku: ServerSku, factor: float) -> ServerSku:
    memory = replace(sku.memory, peak_bw_gbps=sku.memory.peak_bw_gbps * factor)
    return replace(sku, memory=memory)


def _scale_mem_latency(sku: ServerSku, factor: float) -> ServerSku:
    memory = replace(sku.memory, latency_ns=sku.memory.latency_ns * factor)
    return replace(sku, memory=memory)


def _scale_frequency(sku: ServerSku, factor: float) -> ServerSku:
    cpu = replace(
        sku.cpu,
        base_freq_ghz=sku.cpu.base_freq_ghz * factor,
        max_freq_ghz=sku.cpu.max_freq_ghz * factor,
    )
    return replace(sku, cpu=cpu)


def _scale_replacement_quality(sku: ServerSku, factor: float) -> ServerSku:
    caches = sku.cpu.caches.with_replacement_quality(
        sku.cpu.caches.replacement_quality * factor
    )
    return replace(sku, cpu=replace(sku.cpu, caches=caches))


#: The knobs a vendor can realistically turn, by name.
STANDARD_KNOBS: Dict[str, Knob] = {
    "l1i_size": _scale_l1i,
    "l2_size": _scale_l2,
    "llc_size": _scale_llc,
    "memory_bandwidth": _scale_membw,
    "memory_latency": _scale_mem_latency,
    "frequency": _scale_frequency,
    "replacement_quality": _scale_replacement_quality,
}


@dataclass(frozen=True)
class SensitivityResult:
    """Projected throughput response to one knob for one workload."""

    workload: str
    knob: str
    factor: float
    baseline_ips: float
    perturbed_ips: float

    @property
    def relative_gain(self) -> float:
        return self.perturbed_ips / self.baseline_ips - 1.0


def sensitivity_sweep(
    sku: ServerSku,
    workloads: Dict[str, WorkloadCharacteristics],
    cpu_utils: Dict[str, float],
    factor: float = 1.25,
    knobs: Dict[str, Knob] = None,
) -> List[SensitivityResult]:
    """Perturb each knob by ``factor`` and project each workload.

    ``memory_latency`` is perturbed by ``1/factor`` (less latency is
    the improvement), so every row reads as "making this better by
    25%".
    """
    if factor <= 1.0:
        raise ValueError("factor must exceed 1.0 (an improvement)")
    knobs = knobs or STANDARD_KNOBS
    results: List[SensitivityResult] = []
    for name, chars in workloads.items():
        util = cpu_utils.get(name, 0.9)
        baseline = ProjectionEngine(sku).solve(chars, cpu_util=util)
        for knob_name, knob in knobs.items():
            applied = 1.0 / factor if knob_name == "memory_latency" else factor
            perturbed_sku = knob(sku, applied)
            perturbed = ProjectionEngine(perturbed_sku).solve(chars, cpu_util=util)
            results.append(
                SensitivityResult(
                    workload=name,
                    knob=knob_name,
                    factor=applied,
                    baseline_ips=baseline.instructions_per_second,
                    perturbed_ips=perturbed.instructions_per_second,
                )
            )
    return results


def top_knob_per_workload(
    results: List[SensitivityResult],
) -> Dict[str, str]:
    """The knob each workload responds to most — the vendor's to-do list."""
    best: Dict[str, SensitivityResult] = {}
    for result in results:
        current = best.get(result.workload)
        if current is None or result.relative_gain > current.relative_gain:
            best[result.workload] = result
    return {name: result.knob for name, result in best.items()}
