"""Explain a steady state: where do the cycles go?

The paper's fidelity loop needs more than metric values — engineers ask
*why* IPC is what it is.  This module decomposes a workload's
cycles-per-kilo-instruction into named contributors (issue limit, L1I
bubbles, decode/ITLB, branch flushes, cache-level stalls, DRAM stalls,
dependencies), mirroring how a TMAM drill-down session reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.hw.sku import ServerSku
from repro.uarch.cache_model import CacheMissModel
from repro.uarch.characteristics import WorkloadCharacteristics
from repro.uarch.projection import ProjectionEngine
from repro.uarch.tmam import (
    FRONTEND_MISS_COST,
    L1D_MISS_COST,
    L2_MISS_COST,
    MISPREDICT_COST,
    UOPS_PER_INSTRUCTION,
)


@dataclass(frozen=True)
class CycleBreakdown:
    """Named CPK contributors for one (workload, SKU, util) point.

    ``contributors`` maps component name to cycles-per-kilo-instruction
    *after* the generation-efficiency divisor, so the values sum to the
    total CPK the IPC derives from.
    """

    workload: str
    sku: str
    total_cpk: float
    contributors: Dict[str, float]

    def shares(self) -> Dict[str, float]:
        return {k: v / self.total_cpk for k, v in self.contributors.items()}

    def ranked(self) -> List[str]:
        """Contributor names, largest first."""
        return sorted(self.contributors, key=self.contributors.get, reverse=True)

    def render(self) -> str:
        """A drill-down report, one line per contributor."""
        lines = [
            f"{self.workload} on {self.sku}: {self.total_cpk:.0f} cycles "
            f"per kilo-instruction (IPC/thread "
            f"{1000.0 / self.total_cpk:.2f})"
        ]
        shares = self.shares()
        for name in self.ranked():
            lines.append(
                f"  {name:<22} {self.contributors[name]:7.1f} cpk  "
                f"({shares[name]:.0%})"
            )
        return "\n".join(lines)


def explain_state(
    chars: WorkloadCharacteristics,
    sku: ServerSku,
    cpu_util: float = 0.9,
) -> CycleBreakdown:
    """Decompose the projected CPK into named contributors.

    The decomposition re-derives each TMAM term with the same inputs
    the projection engine used, so the contributor sum matches the
    engine's total CPK to floating-point accuracy.
    """
    state = ProjectionEngine(sku).solve(chars, cpu_util=cpu_util)
    cpu = sku.cpu
    eff = cpu.uarch_efficiency
    misses = state.misses

    active_cores = max(1, round(cpu.physical_cores * cpu_util))
    CacheMissModel(cpu.caches, active_cores=active_cores)  # validated path

    pathology = 1.0 + (cpu.frontend_penalty_multiplier - 1.0) * (
        chars.code_footprint_kb / (chars.code_footprint_kb + 400.0)
    )
    issue_cpk = 1000.0 * UOPS_PER_INSTRUCTION / cpu.pipeline_width
    l1i_cpk = (
        misses.l1i_stall_mpki * FRONTEND_MISS_COST * chars.frontend_overlap
        * pathology / eff
    )
    decode_cpk = chars.frontend_extra_cpk * pathology / eff
    branch_cpk = (
        chars.branch_per_kinstr * chars.branch_mispredict_rate * MISPREDICT_COST
        / eff
    )
    l1d_cpk = misses.l1d_mpki * L1D_MISS_COST / eff
    l2_cpk = misses.l2_mpki * L2_MISS_COST / eff
    # Recover the DRAM cost the engine converged on from the remainder
    # of the backend bucket.
    backend_total = state.tmam.backend * state.tmam.cycles_per_kinstr
    dependency_cpk = chars.dependency_cpk / eff
    dram_cpk = max(0.0, backend_total - l1d_cpk - l2_cpk - dependency_cpk)

    contributors = {
        "issue limit": issue_cpk,
        "L1I miss bubbles": l1i_cpk,
        "decode/ITLB": decode_cpk,
        "branch flushes": branch_cpk,
        "L1D->L2 stalls": l1d_cpk,
        "L2->LLC stalls": l2_cpk,
        "DRAM stalls": dram_cpk,
        "dependency stalls": dependency_cpk,
    }
    return CycleBreakdown(
        workload=chars.name,
        sku=sku.name,
        total_cpk=state.tmam.cycles_per_kinstr,
        contributors=contributors,
    )
