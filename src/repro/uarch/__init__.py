"""Analytical microarchitecture model.

The paper evaluates benchmark fidelity with PMU-derived metrics: TMAM
slot breakdowns (Fig. 4-5), IPC (Fig. 6), memory bandwidth (Fig. 7),
L1I MPKI (Fig. 8), kernel/user cycles (Fig. 9), power (Fig. 10) and
frequency (Fig. 11).  This package substitutes the PMU with an
analytical model: every workload carries a characteristics vector
(:class:`WorkloadCharacteristics`) describing the *causes* the paper
identifies — instruction footprint, context-switch rate, data locality,
branch behaviour, kernel time — and the model derives the same metrics
from those causes and the SKU's hardware parameters.
"""

from repro.uarch.characteristics import WorkloadCharacteristics, TaxProfile
from repro.uarch.cache_model import CacheMissModel, MissProfile
from repro.uarch.tmam import TmamProfile
from repro.uarch.projection import ProjectionEngine, SteadyState
from repro.uarch.calibrate import FidelityTargets, StructuralParams, calibrate
from repro.uarch.explain import CycleBreakdown, explain_state
from repro.uarch.sensitivity import sensitivity_sweep, top_knob_per_workload

__all__ = [
    "WorkloadCharacteristics",
    "TaxProfile",
    "CacheMissModel",
    "MissProfile",
    "TmamProfile",
    "ProjectionEngine",
    "SteadyState",
    "FidelityTargets",
    "StructuralParams",
    "calibrate",
    "CycleBreakdown",
    "explain_state",
    "sensitivity_sweep",
    "top_knob_per_workload",
]
