"""Cache miss-rate model.

Two separate mechanisms, matching the paper's Section 4.3 discussion of
Figure 8:

* **Instruction side** — misses grow with the ratio of code footprint
  to L1I capacity (large web codebases), *plus* a context-switch term
  (TaoBench's high MPKI with a small codebase comes from thread
  oversubscription evicting the I-cache).
* **Data side** — a miss-ratio curve over the hierarchy.  Each workload
  has a characteristic reuse scale ``data_reuse_kb`` and a locality
  exponent ``locality_beta``; the fraction of references missing a
  cache of size S is ``(1 + S/S0)^(-beta)``, a standard power-law
  approximation of stack-distance curves.

The hierarchy's ``replacement_quality`` divides I-side misses and
scales the effective capacity on the data side — the knob the Section
5.2 vendor case study turns (improved replacement microcode cut L1I
misses 36% and L2 misses 28%).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hw.cache import CacheHierarchy
from repro.uarch.characteristics import WorkloadCharacteristics

#: L1I MPKI contributed per doubling of footprint-to-capacity ratio.
L1I_FOOTPRINT_COEFF = 8.0
#: L1I misses incurred per context switch (cold refill burst), expressed
#: per kilo-instruction via switches_per_kinstr.
L1I_SWITCH_COEFF = 25.0


@dataclass(frozen=True)
class MissProfile:
    """Misses per kilo-instruction at each level of the hierarchy.

    ``l1i_stall_mpki`` is the *stall-effective* instruction miss count:
    replacement-policy improvements preferentially eliminate cheap
    misses (those that hit in L2 within a few cycles), so counted
    misses drop faster than frontend stalls.  This is exactly the
    Section 5.2 observation — the vendor cut L1I misses 36% but IPC
    rose only ~2%.  With baseline replacement quality the two values
    coincide.
    """

    l1i_mpki: float
    l1d_mpki: float
    l2_mpki: float
    llc_mpki: float
    l1i_stall_mpki: float = -1.0

    def __post_init__(self) -> None:
        if self.l1i_stall_mpki < 0:
            object.__setattr__(self, "l1i_stall_mpki", self.l1i_mpki)
        if not (self.l1d_mpki >= self.l2_mpki >= self.llc_mpki >= 0):
            raise ValueError(
                "data-side misses must be monotone down the hierarchy: "
                f"L1D={self.l1d_mpki} L2={self.l2_mpki} LLC={self.llc_mpki}"
            )
        if self.l1i_mpki < 0:
            raise ValueError("l1i_mpki must be non-negative")


class CacheMissModel:
    """Derives a :class:`MissProfile` from workload x cache hierarchy."""

    def __init__(self, hierarchy: CacheHierarchy, active_cores: int = 1) -> None:
        if active_cores < 1:
            raise ValueError("active_cores must be >= 1")
        self.hierarchy = hierarchy
        self.active_cores = active_cores

    #: Stall-effectiveness exponent: replacement-quality improvements
    #: remove mostly-cheap misses, so frontend stalls shrink as
    #: quality^-STALL_EXPONENT while counts shrink as quality^-1.
    L1I_STALL_EXPONENT = 0.15
    #: The shared LLC benefits less from replacement tuning than the
    #: private L2 (its reuse distances are longer); Section 5.2's data
    #: shows -28% L2 misses but only -10..-14% LLC misses.
    LLC_QUALITY_EXPONENT = 0.5

    def miss_ratio(
        self,
        cache_kb: float,
        chars: WorkloadCharacteristics,
        quality_exponent: float = 1.0,
    ) -> float:
        """Fraction of data references missing a cache of ``cache_kb``."""
        quality = self.hierarchy.replacement_quality ** quality_exponent
        ratio = cache_kb * quality / chars.data_reuse_kb
        return (1.0 + ratio) ** (-chars.locality_beta)

    def _l1i_terms(self, chars: WorkloadCharacteristics) -> float:
        h = self.hierarchy
        footprint_ratio = chars.code_footprint_kb / h.l1i.size_kb
        footprint_term = L1I_FOOTPRINT_COEFF * math.log2(1.0 + footprint_ratio)
        switch_term = L1I_SWITCH_COEFF * chars.switches_per_kinstr
        return footprint_term + switch_term

    def l1i_mpki(self, chars: WorkloadCharacteristics) -> float:
        """Instruction-cache misses per kilo-instruction (counted)."""
        return self._l1i_terms(chars) / self.hierarchy.replacement_quality

    def l1i_stall_mpki(self, chars: WorkloadCharacteristics) -> float:
        """Stall-effective instruction misses (see :class:`MissProfile`)."""
        quality = self.hierarchy.replacement_quality ** self.L1I_STALL_EXPONENT
        return self._l1i_terms(chars) / quality

    def profile(self, chars: WorkloadCharacteristics) -> MissProfile:
        """Full hierarchy miss profile for one workload."""
        h = self.hierarchy
        refs = chars.mem_refs_per_kinstr
        llc_share_kb = h.llc_share_kb(self.active_cores)
        l1d = refs * self.miss_ratio(h.l1d.size_kb, chars)
        l2 = refs * self.miss_ratio(h.l2.size_kb, chars)
        llc = refs * self.miss_ratio(
            llc_share_kb, chars, quality_exponent=self.LLC_QUALITY_EXPONENT
        )
        # Monotonicity guard: a shared LLC smaller than a private L2 can
        # invert the curve on very high core counts; clamp downward.
        l2 = min(l2, l1d)
        llc = min(llc, l2)
        return MissProfile(
            l1i_mpki=self.l1i_mpki(chars),
            l1d_mpki=l1d,
            l2_mpki=l2,
            llc_mpki=llc,
            l1i_stall_mpki=self.l1i_stall_mpki(chars),
        )
