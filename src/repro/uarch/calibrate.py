"""Closed-form calibration: invert the model on a reference SKU.

The real DCPerf team calibrates each benchmark against PMU profiles of
its production counterpart on a reference machine (SKU2, the most
common SKU in the fleet as of 2024), then uses the calibrated benchmark
to *predict* other SKUs.  This module reproduces that workflow: given a
workload's published SKU2 profile (TMAM fractions, L1I MPKI, memory
bandwidth, utilization, kernel share, frequency — i.e. one column of
Figures 4-11), it inverts the analytical model to recover the workload
characteristics vector that produces the profile.

Prediction quality on *other* SKUs (Figures 2, 14, 15, 16) then comes
entirely from model structure, exactly like the paper's methodology
("the projection errors are 0% for SKU1 because it is used as the
baseline for calibration" — here SKU2 plays that role for the
microarchitecture profile and SKU1 for the throughput score).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.hw.frequency import FrequencyModel
from repro.hw.sku import ServerSku, get_sku
from repro.uarch.cache_model import (
    L1I_FOOTPRINT_COEFF,
    L1I_SWITCH_COEFF,
)
from repro.uarch.characteristics import TaxProfile, WorkloadCharacteristics
from repro.uarch.tmam import (
    FRONTEND_MISS_COST,
    L1D_MISS_COST,
    L2_MISS_COST,
    MISPREDICT_COST,
    UOPS_PER_INSTRUCTION,
)


@dataclass(frozen=True)
class FidelityTargets:
    """A workload's published profile on the reference SKU.

    Fractions ``frontend``/``bad_speculation``/``backend``/``retiring``
    are TMAM slot shares (Figure 4) and must sum to ~1.  ``cpu_util``
    and ``sys_util`` are the Figure 9 bars; ``freq_ghz`` is the Figure
    11 bar; ``l1i_mpki`` Figure 8; ``membw_gbps`` Figure 7.
    """

    name: str
    category: str
    frontend: float
    bad_speculation: float
    backend: float
    retiring: float
    l1i_mpki: float
    membw_gbps: float
    cpu_util: float
    sys_util: float
    freq_ghz: float
    ipc: float = 0.0
    platform_activity: float = 0.0

    def __post_init__(self) -> None:
        total = self.frontend + self.bad_speculation + self.backend + self.retiring
        if abs(total - 1.0) > 0.02:
            raise ValueError(
                f"{self.name}: TMAM fractions must sum to ~1, got {total}"
            )
        if not 0.0 < self.cpu_util <= 1.0:
            raise ValueError(f"{self.name}: cpu_util out of range")
        if not 0.0 <= self.sys_util <= self.cpu_util:
            raise ValueError(f"{self.name}: sys_util must be <= cpu_util")


@dataclass(frozen=True)
class StructuralParams:
    """Workload structure the PMU cannot see; set from Table 1 and the
    benchmark descriptions in Section 3.2."""

    instructions_per_request: float
    thread_core_ratio: float = 1.0
    rpc_fanout: float = 0.0
    switches_per_kinstr: float = 0.0
    mem_refs_per_kinstr: float = 350.0
    branch_per_kinstr: float = 170.0
    locality_beta: float = 0.55
    memory_level_parallelism: float = 10.0
    smt_friendly: float = 1.0
    serial_fraction: float = 0.0
    network_bytes_per_request: float = 4096.0
    tax_shares: Dict[str, float] = field(default_factory=dict)


def calibrate(
    targets: FidelityTargets,
    structure: StructuralParams,
    reference_sku: Optional[ServerSku] = None,
    frequency_model: Optional[FrequencyModel] = None,
) -> WorkloadCharacteristics:
    """Invert the model: targets + structure -> characteristics vector."""
    sku = reference_sku or get_sku("SKU2")
    freq_model = frequency_model or FrequencyModel()
    cpu = sku.cpu
    eff = cpu.uarch_efficiency
    width = cpu.pipeline_width

    kernel_frac = targets.sys_util / targets.cpu_util if targets.cpu_util else 0.0
    kernel_frac = min(1.0, kernel_frac)

    # --- frequency -> vector intensity -------------------------------------
    span = cpu.max_freq_ghz - cpu.base_freq_ghz
    penalty_needed = (cpu.max_freq_ghz - targets.freq_ghz) / span if span else 0.0
    vector = (
        penalty_needed
        - freq_model.kernel_penalty * kernel_frac
        - freq_model.idle_penalty * (1.0 - targets.cpu_util)
    ) / freq_model.vector_penalty
    vector = min(1.0, max(0.0, vector))

    # --- L1I MPKI -> code footprint (given the switch rate) ----------------
    switches = structure.switches_per_kinstr
    switch_mpki = L1I_SWITCH_COEFF * switches
    if switch_mpki > 0.85 * targets.l1i_mpki:
        # The declared switch rate alone would overshoot the target;
        # scale it back so the footprint term keeps a real share.
        switches = 0.85 * targets.l1i_mpki / L1I_SWITCH_COEFF
        switch_mpki = L1I_SWITCH_COEFF * switches
    footprint_mpki = targets.l1i_mpki - switch_mpki
    code_kb = cpu.caches.l1i.size_kb * (
        2.0 ** (footprint_mpki / L1I_FOOTPRINT_COEFF) - 1.0
    )
    code_kb = max(code_kb, 1.0)

    # --- retiring fraction -> total CPK ------------------------------------
    retire_cpk = 1000.0 * UOPS_PER_INSTRUCTION / width
    total_cpk = retire_cpk / targets.retiring
    smt_boost = 1.0 + (cpu.smt_throughput_factor - 1.0) * structure.smt_friendly

    # --- memory bandwidth -> LLC MPKI ---------------------------------------
    instr_rate = (
        cpu.physical_cores
        * targets.freq_ghz
        * 1e9
        * (1000.0 / total_cpk)
        * smt_boost
        * targets.cpu_util
    )
    line = cpu.caches.llc.line_bytes
    llc_mpki = targets.membw_gbps * 1e9 / (line * instr_rate) * 1000.0
    llc_mpki = min(llc_mpki, structure.mem_refs_per_kinstr * 0.95)

    # --- LLC MPKI -> data reuse scale ----------------------------------------
    active_cores = max(1, round(cpu.physical_cores * targets.cpu_util))
    llc_share_kb = cpu.caches.llc_share_kb(active_cores)
    llc_ratio = max(1e-9, llc_mpki / structure.mem_refs_per_kinstr)
    beta = structure.locality_beta
    denom = llc_ratio ** (-1.0 / beta) - 1.0
    reuse_kb = llc_share_kb / denom if denom > 1e-9 else llc_share_kb * 1e6

    def miss_ratio(cache_kb: float) -> float:
        return (1.0 + cache_kb / reuse_kb) ** (-beta)

    l1d_mpki = structure.mem_refs_per_kinstr * miss_ratio(cpu.caches.l1d.size_kb)
    l2_mpki = structure.mem_refs_per_kinstr * miss_ratio(cpu.caches.l2.size_kb)
    l2_mpki = min(l2_mpki, l1d_mpki)
    llc_mpki = min(llc_mpki, l2_mpki)

    # --- backend fraction -> memory-level parallelism + dependency stalls ---
    # The backend budget is split: near-cache stalls are fixed by the
    # miss profile; the DRAM term's cost-per-miss is solved for (it
    # determines the workload's effective MLP), and whatever remains
    # becomes dependency stalls.  Solving MLP keeps the inversion exact
    # even for cache-resident (near-zero-bandwidth) workloads.
    rho = min(0.95, targets.membw_gbps / sku.memory.peak_bw_gbps)
    latency_ns = sku.memory.latency_ns / (1.0 - rho * 0.7)
    backend_raw_needed = targets.backend * total_cpk * eff
    near_stalls = l1d_mpki * L1D_MISS_COST + l2_mpki * L2_MISS_COST
    remaining = max(0.0, backend_raw_needed - near_stalls)
    if llc_mpki > 1e-6 and remaining > 0:
        memory_cost = 0.9 * remaining / llc_mpki
        mlp = latency_ns * targets.freq_ghz / memory_cost
        mlp = min(64.0, max(1.0, mlp))
        memory_cost = latency_ns * targets.freq_ghz / mlp
    else:
        mlp = structure.memory_level_parallelism
        memory_cost = latency_ns * targets.freq_ghz / mlp
    dependency_cpk = max(0.0, remaining - llc_mpki * memory_cost)

    # --- bad speculation -> mispredict rate ---------------------------------
    bs_raw_needed = targets.bad_speculation * total_cpk * eff
    mispredict = bs_raw_needed / (structure.branch_per_kinstr * MISPREDICT_COST)
    mispredict = min(0.25, max(0.0, mispredict))

    # --- frontend fraction -> overlap / extra --------------------------------
    fe_needed_raw = targets.frontend * total_cpk * eff
    fe_model_raw = targets.l1i_mpki * FRONTEND_MISS_COST
    if fe_model_raw > fe_needed_raw and fe_model_raw > 0:
        overlap = fe_needed_raw / fe_model_raw
        extra = 0.0
    else:
        overlap = 1.0
        extra = fe_needed_raw - fe_model_raw

    tax = TaxProfile(structure.tax_shares) if structure.tax_shares else TaxProfile()

    return WorkloadCharacteristics(
        name=targets.name,
        category=targets.category,
        code_footprint_kb=code_kb,
        switches_per_kinstr=switches,
        mem_refs_per_kinstr=structure.mem_refs_per_kinstr,
        data_reuse_kb=max(1e-9, reuse_kb),
        locality_beta=beta,
        memory_level_parallelism=mlp,
        branch_per_kinstr=structure.branch_per_kinstr,
        branch_mispredict_rate=mispredict,
        dependency_cpk=dependency_cpk,
        frontend_overlap=max(0.05, min(1.0, overlap)),
        frontend_extra_cpk=max(0.0, extra),
        vector_intensity=vector,
        smt_friendly=structure.smt_friendly,
        kernel_frac=kernel_frac,
        instructions_per_request=structure.instructions_per_request,
        thread_core_ratio=structure.thread_core_ratio,
        rpc_fanout=structure.rpc_fanout,
        network_bytes_per_request=structure.network_bytes_per_request,
        serial_fraction=structure.serial_fraction,
        platform_activity=targets.platform_activity,
        tax_profile=tax,
    )


def verify_roundtrip(
    targets: FidelityTargets,
    chars: WorkloadCharacteristics,
    sku: Optional[ServerSku] = None,
    tolerance: float = 0.12,
) -> Dict[str, float]:
    """Re-run the forward model and report relative errors vs targets.

    Returns a dict of metric -> relative error; raises ``ValueError``
    when any error exceeds ``tolerance``.  Used by tests to prove the
    inversion is faithful.
    """
    from repro.uarch.projection import ProjectionEngine

    sku = sku or get_sku("SKU2")
    state = ProjectionEngine(sku).solve(chars, cpu_util=targets.cpu_util)

    def rel(measured: float, expected: float) -> float:
        if expected == 0:
            return abs(measured)
        return abs(measured - expected) / abs(expected)

    errors = {
        "l1i_mpki": rel(state.misses.l1i_mpki, targets.l1i_mpki),
        "membw_gbps": rel(state.memory_bandwidth_gbps, targets.membw_gbps),
        "frontend": abs(state.tmam.frontend - targets.frontend),
        "bad_speculation": abs(state.tmam.bad_speculation - targets.bad_speculation),
        "backend": abs(state.tmam.backend - targets.backend),
        "retiring": abs(state.tmam.retiring - targets.retiring),
        "freq_ghz": rel(state.effective_freq_ghz, targets.freq_ghz),
    }
    failures = {k: v for k, v in errors.items() if v > tolerance}
    if failures:
        raise ValueError(f"{targets.name}: calibration round-trip failed: {failures}")
    return errors
