"""Top-down Microarchitecture Analysis Method (TMAM) accounting.

TMAM (Yasin, ISPASS'14; Section 4.2 of the paper) splits pipeline
*slots* — ``width x cycles`` issue opportunities — into four buckets:
frontend-bound, bad speculation, backend-bound, and retiring.  We
account in cycles-per-kilo-instruction (CPK):

* retiring CPK is the issue-limited minimum, ``1000 / width``;
* frontend CPK is L1I misses times an effective fetch-bubble cost;
* bad-speculation CPK is mispredicted branches times the flush cost;
* backend CPK is data-side misses times overlap-adjusted latencies,
  plus a workload dependency-stall term.

Dividing each bucket by total CPK yields the slot fractions of
Figure 4, and ``1000 / total CPK`` is the per-thread IPC of Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.uarch.cache_model import MissProfile
from repro.uarch.characteristics import WorkloadCharacteristics

#: Effective frontend bubble cycles per L1I miss (partially hidden by
#: the decoded-uop queue).
FRONTEND_MISS_COST = 8.6
#: Pipeline flush + refill cost per mispredicted branch.
MISPREDICT_COST = 15.0
#: Effective backend cost per L1D miss that hits L2 (mostly hidden).
L1D_MISS_COST = 0.35
#: Effective backend cost per L2 miss that hits LLC.
L2_MISS_COST = 2.6
#: Micro-ops per retired instruction; TMAM retiring counts uop slots.
#: This value makes the paper's Figure 4 (retiring fraction) and
#: Figure 6 (IPC) mutually consistent on a 4-wide SMT2 core.
UOPS_PER_INSTRUCTION = 1.25


@dataclass(frozen=True)
class TmamProfile:
    """Slot fractions (sum to 1) plus the CPK they derive from."""

    frontend: float
    bad_speculation: float
    backend: float
    retiring: float
    cycles_per_kinstr: float

    def __post_init__(self) -> None:
        total = self.frontend + self.bad_speculation + self.backend + self.retiring
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"TMAM fractions must sum to 1, got {total}")

    @property
    def ipc_per_thread(self) -> float:
        """Instructions per cycle for a single hardware thread."""
        return 1000.0 / self.cycles_per_kinstr

    def as_dict(self) -> dict:
        return {
            "frontend": self.frontend,
            "bad_speculation": self.bad_speculation,
            "backend": self.backend,
            "retiring": self.retiring,
        }


def tmam_from_misses(
    chars: WorkloadCharacteristics,
    misses: MissProfile,
    pipeline_width: int,
    memory_cost_cycles: float,
    uarch_efficiency: float = 1.0,
    frontend_multiplier: float = 1.0,
) -> TmamProfile:
    """Build the TMAM profile for one workload on one core design.

    Args:
        chars: workload characteristics vector.
        misses: hierarchy miss profile from :class:`CacheMissModel`.
        pipeline_width: issue slots per cycle.
        memory_cost_cycles: effective stall cycles charged per LLC miss
            (DRAM latency divided by the workload's memory-level
            parallelism, including bandwidth-contention inflation).
        uarch_efficiency: generation-quality divisor on stall costs.
        frontend_multiplier: per-CPU scaling of the L1I miss cost (>= 1;
            models instruction-fetch pathologies).
    """
    if pipeline_width < 1:
        raise ValueError("pipeline_width must be >= 1")
    if uarch_efficiency <= 0:
        raise ValueError("uarch_efficiency must be positive")

    retire_cpk = 1000.0 * UOPS_PER_INSTRUCTION / pipeline_width
    # Fetch pathologies (mis-tuned i-prefetch, page-size blowups) bite
    # in proportion to the code footprint — tiny-footprint workloads
    # barely notice, multi-MB web codebases collapse.
    footprint_weight = chars.code_footprint_kb / (chars.code_footprint_kb + 400.0)
    pathology = 1.0 + (frontend_multiplier - 1.0) * footprint_weight
    frontend_cpk = (
        misses.l1i_stall_mpki * FRONTEND_MISS_COST * chars.frontend_overlap
        * pathology
        + chars.frontend_extra_cpk * pathology
    ) / uarch_efficiency
    bad_spec_cpk = (
        chars.branch_per_kinstr
        * chars.branch_mispredict_rate
        * MISPREDICT_COST
        / uarch_efficiency
    )
    backend_cpk = (
        misses.l1d_mpki * L1D_MISS_COST
        + misses.l2_mpki * L2_MISS_COST
        + misses.llc_mpki * memory_cost_cycles
        + chars.dependency_cpk
    ) / uarch_efficiency

    total_cpk = retire_cpk + frontend_cpk + bad_spec_cpk + backend_cpk
    return TmamProfile(
        frontend=frontend_cpk / total_cpk,
        bad_speculation=bad_spec_cpk / total_cpk,
        backend=backend_cpk / total_cpk,
        retiring=retire_cpk / total_cpk,
        cycles_per_kinstr=total_cpk,
    )
