"""Steady-state performance projection.

:class:`ProjectionEngine` couples the cache model, TMAM accounting,
frequency model, memory system, and power model into one fixed-point
solve: memory-stall cost depends on bandwidth contention, bandwidth
depends on instruction rate, instruction rate depends on IPC, and IPC
depends on memory-stall cost.  A few iterations converge.

The output :class:`SteadyState` bundles every metric the paper reports
per workload: TMAM slots (Fig. 4), IPC per physical core (Fig. 6),
memory bandwidth (Fig. 7), L1I MPKI (Fig. 8), effective frequency
(Fig. 11), and the power breakdown (Fig. 10), plus the instruction
throughput that the workload layer converts into RPS.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, fields
from typing import Dict, Optional, Tuple

from repro.hw.power import PowerBreakdown, PowerModel
from repro.hw.frequency import FrequencyModel
from repro.hw.sku import ServerSku
from repro.uarch.cache_model import CacheMissModel, MissProfile
from repro.uarch.characteristics import WorkloadCharacteristics
from repro.uarch.tmam import TmamProfile, tmam_from_misses

#: Fixed-point iterations for the bandwidth/IPC loop; converges fast
#: because bandwidth feedback is a mild correction.
_SOLVE_ITERATIONS = 5

#: Utilization/efficiency inputs are quantized to this many decimal
#: places before solving, so float jitter below measurement resolution
#: maps to one cache entry and identical outputs in every process.
_QUANTIZE_DECIMALS = 6

#: Shared fixed-point result cache.  Workload harnesses re-solve
#: identical (chars, sku, utilization) points constantly — every
#: :class:`~repro.workloads.runner.ServerModel` construction and every
#: ``steady_state()`` assemble — and :class:`SteadyState` is frozen, so
#: memoizing is safe.  Bounded FIFO to keep long sweeps from growing it
#: without limit.
_SOLVE_CACHE: "OrderedDict[Tuple, SteadyState]" = OrderedDict()
_SOLVE_CACHE_MAX = 4096


def solve_cache_stats() -> Dict[str, int]:
    """Size of the shared solve cache (introspection/testing)."""
    return {"entries": len(_SOLVE_CACHE), "max_entries": _SOLVE_CACHE_MAX}


def clear_solve_cache() -> None:
    """Drop all memoized fixed-point results."""
    _SOLVE_CACHE.clear()


def _chars_key(chars: WorkloadCharacteristics) -> Tuple:
    """Content key for a characteristics vector (dicts made hashable)."""
    scalars = tuple(
        getattr(chars, f.name) for f in fields(chars) if f.name != "tax_profile"
    )
    return scalars + (tuple(sorted(chars.tax_profile.shares.items())),)


@dataclass(frozen=True)
class SteadyState:
    """All model outputs for one (workload, SKU, utilization) point."""

    workload: str
    sku: str
    cpu_util: float
    kernel_frac: float
    effective_freq_ghz: float
    misses: MissProfile
    tmam: TmamProfile
    ipc_per_physical_core: float
    instructions_per_second: float
    memory_bandwidth_gbps: float
    memory_bandwidth_fraction: float
    power: PowerBreakdown
    power_watts: float
    requests_per_second: float

    @property
    def giga_instructions_per_second(self) -> float:
        return self.instructions_per_second / 1e9

    def perf_per_watt(self) -> float:
        """Requests per second per watt of wall power."""
        if self.power_watts <= 0:
            raise ValueError("power_watts must be positive")
        return self.requests_per_second / self.power_watts


class ProjectionEngine:
    """Fixed-point steady-state solver for one server SKU."""

    def __init__(
        self,
        sku: ServerSku,
        frequency_model: Optional[FrequencyModel] = None,
        power_model: Optional[PowerModel] = None,
    ) -> None:
        self.sku = sku
        self.frequency_model = frequency_model or FrequencyModel()
        self.power_model = power_model or PowerModel()
        # Result caching needs hashable model parameters; all bundled
        # models are frozen dataclasses, but a caller may supply a
        # custom unhashable model — degrade to uncached solving then.
        token = (sku, self.frequency_model, self.power_model)
        try:
            hash(token)
        except TypeError:
            token = None
        self._cache_token: Optional[Tuple] = token

    def solve(
        self,
        chars: WorkloadCharacteristics,
        cpu_util: float,
        network_util: Optional[float] = None,
        scaling_efficiency: float = 1.0,
    ) -> SteadyState:
        """Solve the steady state for a workload at a utilization level.

        Args:
            chars: workload characteristics.
            cpu_util: fraction of logical-core time busy, in (0, 1].
            network_util: NIC utilization if known; estimated from the
                request rate and ``network_bytes_per_request`` otherwise.
            scaling_efficiency: multiplicative throughput efficiency
                measured by the workload simulation (scheduler overhead,
                lock contention); 1.0 means perfect scaling.
        """
        if not 0.0 < cpu_util <= 1.0:
            raise ValueError(f"cpu_util must be in (0, 1], got {cpu_util}")
        if not 0.0 < scaling_efficiency <= 1.0:
            raise ValueError(
                f"scaling_efficiency must be in (0, 1], got {scaling_efficiency}"
            )
        quantum = 10.0 ** -_QUANTIZE_DECIMALS
        cpu_util = max(quantum, round(cpu_util, _QUANTIZE_DECIMALS))
        scaling_efficiency = max(
            quantum, round(scaling_efficiency, _QUANTIZE_DECIMALS)
        )
        if network_util is not None:
            network_util = max(
                0.0, min(1.0, round(network_util, _QUANTIZE_DECIMALS))
            )
        key = None
        if self._cache_token is not None:
            key = (
                self._cache_token,
                _chars_key(chars),
                cpu_util,
                network_util,
                scaling_efficiency,
            )
            cached = _SOLVE_CACHE.get(key)
            if cached is not None:
                return cached
        cpu = self.sku.cpu
        memory = self.sku.memory

        active_cores = max(1, round(cpu.physical_cores * cpu_util))
        miss_model = CacheMissModel(cpu.caches, active_cores=active_cores)
        misses = miss_model.profile(chars)

        freq_ghz = self.frequency_model.effective_ghz(
            base_ghz=cpu.base_freq_ghz,
            max_ghz=cpu.max_freq_ghz,
            cpu_util=cpu_util,
            kernel_frac=chars.kernel_frac,
            vector_intensity=chars.vector_intensity,
        )

        smt_boost = 1.0 + (cpu.smt_throughput_factor - 1.0) * chars.smt_friendly
        demand_gbps = 0.0
        tmam = None
        instr_rate = 0.0
        for _ in range(_SOLVE_ITERATIONS):
            latency_ns = memory.effective_latency_ns(demand_gbps)
            memory_cost = (
                latency_ns * freq_ghz / chars.memory_level_parallelism
            )
            tmam = tmam_from_misses(
                chars,
                misses,
                pipeline_width=cpu.pipeline_width,
                memory_cost_cycles=memory_cost,
                uarch_efficiency=cpu.uarch_efficiency,
                frontend_multiplier=cpu.frontend_penalty_multiplier,
            )
            ipc_thread = tmam.ipc_per_thread
            instr_rate = (
                cpu.physical_cores
                * freq_ghz
                * 1e9
                * ipc_thread
                * smt_boost
                * cpu_util
                * scaling_efficiency
            )
            line_bytes = cpu.caches.llc.line_bytes
            demand_gbps = misses.llc_mpki / 1000.0 * instr_rate * line_bytes / 1e9
            demand_gbps = min(demand_gbps, memory.peak_bw_gbps * 0.95)

        assert tmam is not None
        ipc_physical = tmam.ipc_per_thread * smt_boost
        rps = instr_rate / chars.instructions_per_request

        if network_util is None:
            nic_bps = self.sku.network_gbps * 1e9 / 8.0
            network_util = min(1.0, rps * chars.network_bytes_per_request / nic_bps)

        bw_frac = min(1.0, demand_gbps / memory.peak_bw_gbps)
        power = self.power_model.breakdown(
            cpu_util=cpu_util,
            freq_rel=freq_ghz / cpu.max_freq_ghz,
            retiring_frac=tmam.retiring,
            membw_frac=bw_frac,
            network_util=network_util,
            platform_activity=chars.platform_activity,
            kernel_frac=chars.kernel_frac,
            vector_intensity=chars.vector_intensity,
        )

        state = SteadyState(
            workload=chars.name,
            sku=self.sku.name,
            cpu_util=cpu_util,
            kernel_frac=chars.kernel_frac,
            effective_freq_ghz=freq_ghz,
            misses=misses,
            tmam=tmam,
            ipc_per_physical_core=ipc_physical,
            instructions_per_second=instr_rate,
            memory_bandwidth_gbps=demand_gbps,
            memory_bandwidth_fraction=bw_frac,
            power=power,
            power_watts=power.watts(self.sku.designed_power_w),
            requests_per_second=rps,
        )
        if key is not None:
            _SOLVE_CACHE[key] = state
            if len(_SOLVE_CACHE) > _SOLVE_CACHE_MAX:
                _SOLVE_CACHE.popitem(last=False)
        return state
