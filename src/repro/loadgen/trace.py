"""Request traces: capture, synthesis, and replay.

Section 2.2: "DCPerf generates traffic patterns or uses datasets that
represent production systems.  For example, the distribution of
request and response sizes is replicated from production systems."
This module gives that replication a concrete form: a trace is a list
of (inter-arrival, request size, response size, endpoint) records that
can be saved/loaded as JSONL, synthesized with production-like shape
(Poisson arrivals under a diurnal envelope, lognormal sizes), and
replayed into any workload handler.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence

from repro.loadgen.generators import Handler, Request
from repro.loadgen.recorder import LatencyRecorder
from repro.sim.engine import Environment
from repro.sim.rng import RngStreams, WeightedChoice, lognormal_sampler


@dataclass(frozen=True)
class TraceRecord:
    """One request in a trace."""

    inter_arrival_s: float
    request_bytes: int
    response_bytes: int
    endpoint: str = "default"

    def __post_init__(self) -> None:
        if self.inter_arrival_s < 0:
            raise ValueError("inter_arrival_s must be non-negative")
        if self.request_bytes < 0 or self.response_bytes < 0:
            raise ValueError("sizes must be non-negative")


@dataclass
class Trace:
    """An ordered request trace with summary statistics."""

    records: List[TraceRecord]

    def __post_init__(self) -> None:
        if not self.records:
            raise ValueError("a trace needs at least one record")

    def __len__(self) -> int:
        return len(self.records)

    @property
    def duration_s(self) -> float:
        return sum(r.inter_arrival_s for r in self.records)

    @property
    def mean_rate_rps(self) -> float:
        duration = self.duration_s
        if duration <= 0:
            return float("inf")
        return len(self.records) / duration

    def size_summary(self) -> Dict[str, float]:
        request_sizes = sorted(r.request_bytes for r in self.records)
        response_sizes = sorted(r.response_bytes for r in self.records)

        def p(values: Sequence[int], q: float) -> float:
            index = min(len(values) - 1, int(q * (len(values) - 1)))
            return float(values[index])

        return {
            "request_mean": sum(request_sizes) / len(request_sizes),
            "request_p99": p(request_sizes, 0.99),
            "response_mean": sum(response_sizes) / len(response_sizes),
            "response_p99": p(response_sizes, 0.99),
        }

    def endpoint_mix(self) -> Dict[str, float]:
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.endpoint] = counts.get(record.endpoint, 0) + 1
        total = len(self.records)
        return {k: v / total for k, v in counts.items()}

    # --- persistence ------------------------------------------------------------
    def save_jsonl(self, path: str) -> None:
        with open(path, "w") as fh:
            for record in self.records:
                fh.write(
                    json.dumps(
                        {
                            "ia": record.inter_arrival_s,
                            "req": record.request_bytes,
                            "rsp": record.response_bytes,
                            "ep": record.endpoint,
                        }
                    )
                    + "\n"
                )

    @classmethod
    def load_jsonl(cls, path: str) -> "Trace":
        records = []
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                raw = json.loads(line)
                records.append(
                    TraceRecord(
                        inter_arrival_s=float(raw["ia"]),
                        request_bytes=int(raw["req"]),
                        response_bytes=int(raw["rsp"]),
                        endpoint=str(raw.get("ep", "default")),
                    )
                )
        return cls(records=records)


def synthesize_production_trace(
    num_requests: int,
    base_rate_rps: float,
    mean_request_bytes: float = 2_000.0,
    mean_response_bytes: float = 60_000.0,
    size_cv: float = 1.5,
    diurnal_amplitude: float = 0.3,
    diurnal_period_s: float = 86_400.0,
    endpoints: Optional[Dict[str, float]] = None,
    seed: int = 7,
) -> Trace:
    """Build a production-shaped trace.

    Poisson arrivals modulated by a sinusoidal diurnal envelope,
    lognormal request/response sizes, and a weighted endpoint mix.
    """
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    if base_rate_rps <= 0:
        raise ValueError("base_rate_rps must be positive")
    if not 0.0 <= diurnal_amplitude < 1.0:
        raise ValueError("diurnal_amplitude must be in [0, 1)")
    endpoints = endpoints or {"default": 1.0}
    names = list(endpoints)
    endpoint_mix = WeightedChoice(names, [endpoints[n] for n in names])
    request_sampler = lognormal_sampler(mean_request_bytes, size_cv)
    response_sampler = lognormal_sampler(mean_response_bytes, size_cv)

    streams = RngStreams(seed).spawn("trace")
    arrival_rng = streams.stream("arrivals")
    size_rng = streams.stream("sizes")
    endpoint_rng = streams.stream("endpoints")

    records: List[TraceRecord] = []
    clock = 0.0
    for _ in range(num_requests):
        envelope = 1.0 + diurnal_amplitude * math.sin(
            2.0 * math.pi * clock / diurnal_period_s
        )
        rate = base_rate_rps * envelope
        inter_arrival = arrival_rng.expovariate(rate)
        clock += inter_arrival
        records.append(
            TraceRecord(
                inter_arrival_s=inter_arrival,
                request_bytes=int(request_sampler.sample(size_rng)),
                response_bytes=int(response_sampler.sample(size_rng)),
                endpoint=endpoint_mix.sample(endpoint_rng),
            )
        )
    return Trace(records=records)


class TraceReplayGenerator:
    """Replays a trace into a handler inside the simulation.

    ``time_scale`` compresses the trace clock (0.01 replays a day of
    traffic in ~15 minutes of simulated time); ``loop`` restarts the
    trace when it runs out.  Request metadata carries the record's
    sizes and endpoint so handlers can honour them.
    """

    def __init__(
        self,
        env: Environment,
        trace: Trace,
        handler: Handler,
        recorder: LatencyRecorder,
        time_scale: float = 1.0,
        loop: bool = True,
    ) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.env = env
        self.trace = trace
        self.handler = handler
        self.recorder = recorder
        self.time_scale = time_scale
        self.loop = loop
        self.issued = 0
        self.completed = 0

    def start(self) -> None:
        self.env.process(self._replay_loop())

    def _replay_loop(self) -> Generator:
        while True:
            for record in self.trace.records:
                yield self.env.sleep(record.inter_arrival_s * self.time_scale)
                request = Request(
                    request_id=self.issued,
                    created_at=self.env.now,
                    metadata={
                        "request_bytes": record.request_bytes,
                        "response_bytes": record.response_bytes,
                        "endpoint": record.endpoint,
                    },
                )
                self.issued += 1
                self.env.process(self._dispatch(request))
            if not self.loop:
                return

    def _dispatch(self, request: Request) -> Generator:
        start = self.env.now
        yield from self.handler(request)
        self.recorder.record(self.env.now - start)
        self.completed += 1
