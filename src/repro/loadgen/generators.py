"""Open- and closed-loop request generators as simulation processes.

A *handler* is a generator function ``handler(request)`` that performs
the request's work inside the simulation (queueing on thread pools,
executing CPU bursts) and returns when the response is ready.  The
generators time each request into a :class:`LatencyRecorder`.

Open-loop (Poisson arrivals at a fixed offered rate) models Siege and
Memtier in rate mode; closed-loop (N concurrent clients with think
time) models connection-bound clients.  The distinction matters for
tail latency: open-loop keeps arriving during a stall, closed-loop
self-throttles — production traffic is open-loop, so DCPerf's SLO
searches use it.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Generator, Optional

from repro.loadgen.recorder import LatencyRecorder
from repro.sim.engine import Environment
from repro.sim.rng import exponential_batch


class Request:
    """One request flowing through a workload model.

    ``metadata`` is materialized on first touch: most handlers never
    look at it, and the steady-state request path should not pay a dict
    allocation per arrival.
    """

    __slots__ = ("request_id", "created_at", "_metadata")

    def __init__(
        self,
        request_id: int,
        created_at: float,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.request_id = request_id
        self.created_at = created_at
        self._metadata = metadata

    @property
    def metadata(self) -> Dict[str, Any]:
        md = self._metadata
        if md is None:
            md = self._metadata = {}
        return md

    def __repr__(self) -> str:
        return (
            f"Request(request_id={self.request_id}, "
            f"created_at={self.created_at}, metadata={self._metadata})"
        )


#: Handler signature: a generator that completes when the response is sent.
Handler = Callable[[Request], Generator]


class OpenLoopGenerator:
    """Poisson arrivals at ``rate_rps`` simulated requests per second.

    ``batch`` lets one simulated request stand for ``batch`` production
    requests (service times must already include the batch factor);
    reported request counts are simulation-level.

    A single dispatcher process drives all arrivals: inter-arrival gaps
    are pre-sampled in batches of :attr:`SAMPLE_BATCH` (same RNG draw
    order as one-at-a-time sampling, so traces are byte-identical) and
    each wait uses the engine's recycled ``sleep`` timeouts, so steady
    state allocates no timer objects.

    ``on_complete``, when set, is called after every finished request
    with its latency in seconds (``None`` for errors) — the hook the
    harness's convergence monitor uses for deterministic early
    termination.
    """

    #: Inter-arrival gaps pre-sampled per RNG refill.
    SAMPLE_BATCH = 256

    __slots__ = (
        "env",
        "rate_rps",
        "handler",
        "recorder",
        "rng",
        "timeout_seconds",
        "on_complete",
        "issued",
        "completed",
        "_process",
        "_record",
    )

    def __init__(
        self,
        env: Environment,
        rate_rps: float,
        handler: Handler,
        recorder: LatencyRecorder,
        rng: random.Random,
        timeout_seconds: Optional[float] = None,
        on_complete: Optional[Callable[[Optional[float]], None]] = None,
    ) -> None:
        if rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        self.env = env
        self.rate_rps = rate_rps
        self.handler = handler
        self.recorder = recorder
        self.rng = rng
        self.timeout_seconds = timeout_seconds
        self.on_complete = on_complete
        self.issued = 0
        self.completed = 0
        self._process = None
        self._record = recorder.record

    def start(self) -> None:
        self._process = self.env.process(self._arrival_loop())

    def _arrival_loop(self) -> Generator:
        env = self.env
        sleep = env.sleep
        process = env.process
        dispatch = self._dispatch
        rng = self.rng
        rate = self.rate_rps
        batch = self.SAMPLE_BATCH
        while True:
            for gap in exponential_batch(rng, rate, batch):
                yield sleep(gap)
                request = Request(self.issued, env.now)
                self.issued += 1
                process(dispatch(request))

    def _dispatch(self, request: Request) -> Generator:
        env = self.env
        start = env.now
        try:
            yield from self.handler(request)
        except Exception:
            # A failed request (fault injection, exhausted retries) is a
            # request error, not a simulation crash.
            self.recorder.record_error()
            self.completed += 1
            if self.on_complete is not None:
                self.on_complete(None)
            return
        latency = env.now - start
        if self.timeout_seconds is not None and latency > self.timeout_seconds:
            self.recorder.record_error()
            latency = None
        else:
            self._record(latency)
        self.completed += 1
        on_complete = self.on_complete
        if on_complete is not None:
            on_complete(latency)


class ClosedLoopGenerator:
    """``concurrency`` clients, each issuing the next request after the
    previous response plus an exponential think time."""

    def __init__(
        self,
        env: Environment,
        concurrency: int,
        handler: Handler,
        recorder: LatencyRecorder,
        rng: random.Random,
        think_time_seconds: float = 0.0,
    ) -> None:
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if think_time_seconds < 0:
            raise ValueError("think_time_seconds must be non-negative")
        self.env = env
        self.concurrency = concurrency
        self.handler = handler
        self.recorder = recorder
        self.rng = rng
        self.think_time_seconds = think_time_seconds
        self.issued = 0
        self.completed = 0

    def start(self) -> None:
        for _ in range(self.concurrency):
            self.env.process(self._client_loop())

    def _client_loop(self) -> Generator:
        # Think times are *not* pre-sampled in batches here: all clients
        # interleave draws from one shared stream in event order, so
        # per-client batching would reorder the stream and change the
        # trace.  The recycled sleep still avoids per-wait allocations.
        while True:
            if self.think_time_seconds > 0:
                yield self.env.sleep(
                    self.rng.expovariate(1.0 / self.think_time_seconds)
                )
            request = Request(request_id=self.issued, created_at=self.env.now)
            self.issued += 1
            start = self.env.now
            try:
                yield from self.handler(request)
            except Exception:
                self.recorder.record_error()
            else:
                self.recorder.record(self.env.now - start)
            self.completed += 1
