"""Open- and closed-loop request generators as simulation processes.

A *handler* is a generator function ``handler(request)`` that performs
the request's work inside the simulation (queueing on thread pools,
executing CPU bursts) and returns when the response is ready.  The
generators time each request into a :class:`LatencyRecorder`.

Open-loop (Poisson arrivals at a fixed offered rate) models Siege and
Memtier in rate mode; closed-loop (N concurrent clients with think
time) models connection-bound clients.  The distinction matters for
tail latency: open-loop keeps arriving during a stall, closed-loop
self-throttles — production traffic is open-loop, so DCPerf's SLO
searches use it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Optional

from repro.loadgen.recorder import LatencyRecorder
from repro.sim.engine import Environment


@dataclass
class Request:
    """One request flowing through a workload model."""

    request_id: int
    created_at: float
    metadata: Dict[str, Any] = field(default_factory=dict)


#: Handler signature: a generator that completes when the response is sent.
Handler = Callable[[Request], Generator]


class OpenLoopGenerator:
    """Poisson arrivals at ``rate_rps`` simulated requests per second.

    ``batch`` lets one simulated request stand for ``batch`` production
    requests (service times must already include the batch factor);
    reported request counts are simulation-level.
    """

    def __init__(
        self,
        env: Environment,
        rate_rps: float,
        handler: Handler,
        recorder: LatencyRecorder,
        rng: random.Random,
        timeout_seconds: Optional[float] = None,
    ) -> None:
        if rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        self.env = env
        self.rate_rps = rate_rps
        self.handler = handler
        self.recorder = recorder
        self.rng = rng
        self.timeout_seconds = timeout_seconds
        self.issued = 0
        self.completed = 0
        self._process = None

    def start(self) -> None:
        self._process = self.env.process(self._arrival_loop())

    def _arrival_loop(self) -> Generator:
        while True:
            yield self.env.timeout(self.rng.expovariate(self.rate_rps))
            request = Request(request_id=self.issued, created_at=self.env.now)
            self.issued += 1
            self.env.process(self._dispatch(request))

    def _dispatch(self, request: Request) -> Generator:
        start = self.env.now
        try:
            yield from self.handler(request)
        except Exception:
            # A failed request (fault injection, exhausted retries) is a
            # request error, not a simulation crash.
            self.recorder.record_error()
            self.completed += 1
            return
        latency = self.env.now - start
        if self.timeout_seconds is not None and latency > self.timeout_seconds:
            self.recorder.record_error()
        else:
            self.recorder.record(latency)
        self.completed += 1


class ClosedLoopGenerator:
    """``concurrency`` clients, each issuing the next request after the
    previous response plus an exponential think time."""

    def __init__(
        self,
        env: Environment,
        concurrency: int,
        handler: Handler,
        recorder: LatencyRecorder,
        rng: random.Random,
        think_time_seconds: float = 0.0,
    ) -> None:
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if think_time_seconds < 0:
            raise ValueError("think_time_seconds must be non-negative")
        self.env = env
        self.concurrency = concurrency
        self.handler = handler
        self.recorder = recorder
        self.rng = rng
        self.think_time_seconds = think_time_seconds
        self.issued = 0
        self.completed = 0

    def start(self) -> None:
        for _ in range(self.concurrency):
            self.env.process(self._client_loop())

    def _client_loop(self) -> Generator:
        while True:
            if self.think_time_seconds > 0:
                yield self.env.timeout(
                    self.rng.expovariate(1.0 / self.think_time_seconds)
                )
            request = Request(request_id=self.issued, created_at=self.env.now)
            self.issued += 1
            start = self.env.now
            try:
                yield from self.handler(request)
            except Exception:
                self.recorder.record_error()
            else:
                self.recorder.record(self.env.now - start)
            self.completed += 1
