"""Service-level objectives and max-throughput-under-SLO search.

FeedSim's methodology (Section 3.2): "the client generates load to
determine the maximum request rate FeedSim can handle while maintaining
the 95th percentile latency within the SLO of 500ms."  The search here
is a bisection over offered load: each probe runs a fresh simulation at
a candidate rate and checks the SLO.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional


@dataclass(frozen=True)
class SLO:
    """A latency/error-rate objective."""

    percentile: float = 95.0
    latency_seconds: float = 0.5
    max_error_rate: float = 0.01

    def __post_init__(self) -> None:
        if not 0 < self.percentile <= 100:
            raise ValueError("percentile must be in (0, 100]")
        if self.latency_seconds <= 0:
            raise ValueError("latency_seconds must be positive")
        if not 0 <= self.max_error_rate <= 1:
            raise ValueError("max_error_rate must be in [0, 1]")


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of one trial run at a candidate load."""

    offered_rps: float
    achieved_rps: float
    latency_at_percentile: float
    error_rate: float
    cpu_util: float

    def meets(self, slo: SLO) -> bool:
        return (
            self.latency_at_percentile <= slo.latency_seconds
            and self.error_rate <= slo.max_error_rate
        )


@dataclass(frozen=True)
class SloSearchResult:
    """The search's converged operating point."""

    max_rps: float
    probe: ProbeResult
    probes_run: int


#: A probe function runs the workload at an offered rate and reports.
ProbeFn = Callable[[float], ProbeResult]


def find_max_load(
    probe: ProbeFn,
    slo: SLO,
    low_rps: float,
    high_rps: float,
    tolerance: float = 0.03,
    max_probes: int = 16,
) -> SloSearchResult:
    """Bisect for the highest offered load that meets the SLO.

    ``low_rps`` must meet the SLO (the search raises otherwise) and
    ``high_rps`` should violate it; if ``high_rps`` passes, it is
    returned directly (the workload saturates elsewhere, e.g. CPU).
    """
    if not 0 < low_rps < high_rps:
        raise ValueError("need 0 < low_rps < high_rps")
    probes = 0

    best: Optional[ProbeResult] = None
    low_result = probe(low_rps)
    probes += 1
    # If even the starting load violates the SLO (latency is dominated
    # by the request's own critical path), step down a few times before
    # concluding the workload cannot meet it at any load.
    while not low_result.meets(slo) and probes < max_probes:
        low_rps /= 2.0
        low_result = probe(low_rps)
        probes += 1
    if not low_result.meets(slo):
        raise ValueError(
            f"the SLO cannot be met even at {low_rps:.3g} rps "
            f"(p{slo.percentile}={low_result.latency_at_percentile:.3f}s)"
        )
    best = low_result

    high_result = probe(high_rps)
    probes += 1
    if high_result.meets(slo):
        return SloSearchResult(max_rps=high_rps, probe=high_result, probes_run=probes)

    low, high = low_rps, high_rps
    while probes < max_probes and (high - low) / high > tolerance:
        mid = (low + high) / 2.0
        result = probe(mid)
        probes += 1
        if result.meets(slo):
            low, best = mid, result
        else:
            high = mid
    assert best is not None
    return SloSearchResult(max_rps=low, probe=best, probes_run=probes)
