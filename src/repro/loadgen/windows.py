"""Windowed in-run SLO tracking over completion-counted windows.

End-of-run percentiles hide how a benchmark *degrades*: a brownout that
ruins thirty seconds of a two-minute window barely moves the aggregate
p95, yet production SLO dashboards (and the controllers that act on
them) see exactly that thirty-second cliff.  The
:class:`WindowedSloTracker` closes the gap: completions stream into
fixed-size windows (counted in completions, never in wall time, so two
runs of the same seed close windows at the same instants), each window
is summarized into a :class:`WindowSnapshot` — p50/p95/p99 from an
HDR-style :class:`~repro.loadgen.recorder.BucketedHistogram`, error
rate, SLO-met count, goodput fraction, attributed device stall time —
and observers (load shedders, admission controllers, brownout
responders) react at window boundaries.

Determinism contract: window boundaries depend only on the completion
sequence; every field of a snapshot is a pure function of the
completions and stalls attributed to that window.  Replays are
byte-identical by construction.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.loadgen.recorder import BucketedHistogram


class WindowSnapshot:
    """One closed window's SLO signals.

    Percentiles come from the window's HDR histogram (bucket-midpoint
    resolution, ~0.4%); counts are exact.  ``slo_met`` counts
    *successes at or under the SLO latency*, judged on the raw latency
    (not the bucketed value) so the goodput signal carries no
    quantization error.  A window that closed on errors alone reports
    zero percentiles with ``error_rate == 1.0`` — the shape every
    consumer can rely on.
    """

    __slots__ = (
        "index",
        "start_s",
        "end_s",
        "completions",
        "errors",
        "slo_met",
        "p50",
        "p95",
        "p99",
        "stall_seconds",
    )

    def __init__(
        self,
        index: int,
        start_s: float,
        end_s: float,
        completions: int,
        errors: int,
        slo_met: int,
        p50: float,
        p95: float,
        p99: float,
        stall_seconds: float,
    ) -> None:
        self.index = index
        self.start_s = start_s
        self.end_s = end_s
        self.completions = completions
        self.errors = errors
        self.slo_met = slo_met
        self.p50 = p50
        self.p95 = p95
        self.p99 = p99
        self.stall_seconds = stall_seconds

    @property
    def total(self) -> int:
        """Requests that finished in this window, successes + errors."""
        return self.completions + self.errors

    @property
    def error_rate(self) -> float:
        total = self.total
        return self.errors / total if total else 0.0

    @property
    def goodput_fraction(self) -> float:
        """Fraction of finished requests that met the SLO."""
        total = self.total
        return self.slo_met / total if total else 0.0

    def as_row(self) -> List[float]:
        """Compact report row (JSON/codec-safe plain floats)."""
        return [
            float(self.index),
            self.start_s,
            self.end_s,
            float(self.completions),
            float(self.errors),
            float(self.slo_met),
            self.p50,
            self.p95,
            self.p99,
            self.stall_seconds,
        ]

    #: Column names for :meth:`as_row`, in order.
    ROW_FIELDS = (
        "index",
        "start_s",
        "end_s",
        "completions",
        "errors",
        "slo_met",
        "p50",
        "p95",
        "p99",
        "stall_seconds",
    )


#: Observer signature: called with each closed window's snapshot.
WindowObserver = Callable[[WindowSnapshot], None]


class WindowedSloTracker:
    """Rolling per-window latency/error/goodput signals during a run.

    ``clock`` supplies the current simulated time (pass ``env.now`` via
    a lambda or ``lambda: env.now``-equivalent); it is used only to
    stamp window start/end times for reporting — window *boundaries*
    are decided by completion counts alone.

    ``on_window`` observers are invoked in registration order at every
    window close; they run inside the completion callback, so anything
    they mutate (drop probabilities, relief factors) takes effect for
    the very next arrival — the closed-loop property the control plane
    needs.
    """

    __slots__ = (
        "window_completions",
        "slo_latency_s",
        "_clock",
        "_observers",
        "_window_hist",
        "_window_errors",
        "_window_slo_met",
        "_window_stall_s",
        "_window_start_s",
        "_cumulative_hist",
        "completions",
        "errors",
        "slo_met",
        "stall_seconds",
        "windows",
        "windows_closed",
    )

    def __init__(
        self,
        window_completions: int,
        slo_latency_s: float,
        clock: Callable[[], float],
        on_window: Optional[WindowObserver] = None,
    ) -> None:
        if window_completions < 1:
            raise ValueError("window_completions must be >= 1")
        if slo_latency_s <= 0:
            raise ValueError("slo_latency_s must be positive")
        self.window_completions = window_completions
        self.slo_latency_s = slo_latency_s
        self._clock = clock
        self._observers: List[WindowObserver] = []
        if on_window is not None:
            self._observers.append(on_window)
        self._window_hist = BucketedHistogram()
        self._window_errors = 0
        self._window_slo_met = 0
        self._window_stall_s = 0.0
        self._window_start_s = clock()
        self._cumulative_hist = BucketedHistogram()
        self.completions = 0
        self.errors = 0
        self.slo_met = 0
        self.stall_seconds = 0.0
        self.windows: List[WindowSnapshot] = []
        self.windows_closed = 0

    # -- observers -------------------------------------------------------------
    def subscribe(self, observer: WindowObserver) -> None:
        """Add a window-close observer (called in registration order)."""
        self._observers.append(observer)

    # -- recording -------------------------------------------------------------
    def on_complete(self, latency: Optional[float]) -> None:
        """Generator completion hook: ``None`` means a request error."""
        if latency is None:
            self.errors += 1
            self._window_errors += 1
        else:
            self.completions += 1
            self._window_hist.record(latency)
            self._cumulative_hist.record(latency)
            if latency <= self.slo_latency_s:
                self.slo_met += 1
                self._window_slo_met += 1
        if self._window_hist.total + self._window_errors >= self.window_completions:
            self._close_window()

    def add_stall(self, seconds: float) -> None:
        """Attribute device stall time to the current window.

        Folds block-device write-stall time into the SLO signals: a
        window during which the storage engine stalled foreground puts
        carries that time explicitly, rather than only implicitly
        through inflated latencies.
        """
        if seconds < 0:
            raise ValueError("stall seconds must be non-negative")
        self._window_stall_s += seconds
        self.stall_seconds += seconds

    # -- window lifecycle ------------------------------------------------------
    def _close_window(self) -> None:
        hist = self._window_hist
        now = self._clock()
        if hist.total:
            p50 = hist.percentile(50.0)
            p95 = hist.percentile(95.0)
            p99 = hist.percentile(99.0)
        else:  # error-only window: explicit zero latencies
            p50 = p95 = p99 = 0.0
        snapshot = WindowSnapshot(
            index=self.windows_closed,
            start_s=self._window_start_s,
            end_s=now,
            completions=hist.total,
            errors=self._window_errors,
            slo_met=self._window_slo_met,
            p50=p50,
            p95=p95,
            p99=p99,
            stall_seconds=self._window_stall_s,
        )
        self.windows.append(snapshot)
        self.windows_closed += 1
        hist.clear()
        self._window_errors = 0
        self._window_slo_met = 0
        self._window_stall_s = 0.0
        self._window_start_s = now
        for observer in self._observers:
            observer(snapshot)

    # -- queries ---------------------------------------------------------------
    @property
    def last_window(self) -> Optional[WindowSnapshot]:
        return self.windows[-1] if self.windows else None

    def cumulative_percentile(self, p: float) -> float:
        """Percentile over every success since the last reset."""
        if self._cumulative_hist.total == 0:
            return 0.0
        return self._cumulative_hist.percentile(p)

    def goodput_fraction(self) -> float:
        """Cumulative fraction of finished requests that met the SLO."""
        total = self.completions + self.errors
        return self.slo_met / total if total else 0.0

    def summary(self) -> Dict[str, float]:
        """Scalar cumulative signals (report/extra-safe floats)."""
        return {
            "completions": float(self.completions),
            "errors": float(self.errors),
            "slo_met": float(self.slo_met),
            "windows": float(self.windows_closed),
            "goodput_fraction": self.goodput_fraction(),
            "p50": self.cumulative_percentile(50.0),
            "p95": self.cumulative_percentile(95.0),
            "p99": self.cumulative_percentile(99.0),
            "stall_seconds": self.stall_seconds,
        }

    def window_series(self) -> List[List[float]]:
        """Every closed window as a compact report row."""
        return [w.as_row() for w in self.windows]

    @staticmethod
    def merge_window_series(
        series_list: List[List[List[float]]],
    ) -> List[List[float]]:
        """Merge per-shard window series into one fleet-level series.

        Shard environments close windows independently, so rows are
        aligned *by window index*: fleet window ``i`` aggregates every
        shard's window ``i`` (shards that closed fewer windows simply
        stop contributing).  Counts (completions, errors, slo_met,
        stall time) add; the window spans ``min(start)``..``max(end)``
        across the contributing shards; percentiles are the
        completion-weighted mean of the shard percentiles (zero when no
        shard completed anything that window).  Pure and deterministic:
        the output depends only on the input rows, in shard order, so
        every execution path merges to the same bytes.
        """
        length = max((len(series) for series in series_list), default=0)
        merged: List[List[float]] = []
        for i in range(length):
            rows = [series[i] for series in series_list if len(series) > i]
            completions = sum(row[3] for row in rows)
            weights = [row[3] for row in rows]
            if completions > 0:
                percentiles = [
                    sum(row[col] * w for row, w in zip(rows, weights))
                    / completions
                    for col in (6, 7, 8)
                ]
            else:
                percentiles = [0.0, 0.0, 0.0]
            merged.append(
                [
                    float(i),
                    min(row[1] for row in rows),
                    max(row[2] for row in rows),
                    completions,
                    sum(row[4] for row in rows),
                    sum(row[5] for row in rows),
                    percentiles[0],
                    percentiles[1],
                    percentiles[2],
                    sum(row[9] for row in rows),
                ]
            )
        return merged

    def reset(self) -> None:
        """Restart accounting at a measurement-window edge.

        Clears cumulative counters, closed windows, and the open
        window's partial state, but deliberately does *not* touch
        subscribed observers — controller state (drop probabilities,
        relief steps) carries across the warmup edge exactly as it
        does on a production box that was already shedding when the
        measurement started.
        """
        self._window_hist.clear()
        self._window_errors = 0
        self._window_slo_met = 0
        self._window_stall_s = 0.0
        self._window_start_s = self._clock()
        self._cumulative_hist.clear()
        self.completions = 0
        self.errors = 0
        self.slo_met = 0
        self.stall_seconds = 0.0
        self.windows = []
        self.windows_closed = 0
