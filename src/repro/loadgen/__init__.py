"""Load generation and latency measurement.

Models DCPerf's client components (Siege, Memtier, OLDISim's load
driver): open-loop Poisson arrival generators, closed-loop concurrent
clients, a latency recorder with exact percentiles, and the SLO search
that finds the maximum sustainable request rate under a latency bound
(FeedSim's "max RPS with p95 < 500ms" methodology).
"""

from repro.loadgen.recorder import LatencyRecorder
from repro.loadgen.generators import ClosedLoopGenerator, OpenLoopGenerator
from repro.loadgen.slo import SLO, SloSearchResult, find_max_load
from repro.loadgen.trace import (
    Trace,
    TraceRecord,
    TraceReplayGenerator,
    synthesize_production_trace,
)
from repro.loadgen.windows import WindowedSloTracker, WindowSnapshot

__all__ = [
    "LatencyRecorder",
    "WindowSnapshot",
    "WindowedSloTracker",
    "OpenLoopGenerator",
    "ClosedLoopGenerator",
    "SLO",
    "SloSearchResult",
    "find_max_load",
    "Trace",
    "TraceRecord",
    "TraceReplayGenerator",
    "synthesize_production_trace",
]
