"""Latency recording with exact percentiles.

Collects per-request latencies and computes percentiles by sorting
(exact, not approximated — sample counts in the simulations are small
enough that a t-digest would be overkill and less testable).

An opt-in bucketed backend (``LatencyRecorder(backend="hdr")``) trades
that exactness for O(buckets) percentile reads: samples land in
log-linear HDR-style buckets, so an in-run SLO monitor can query
percentiles continuously without re-sorting the sample list.  The
exact sort-based path stays the default and is byte-for-byte unchanged.
"""

from __future__ import annotations

import bisect
import heapq
from typing import Dict, List


class BucketedHistogram:
    """Log-linear (HDR-style) histogram over non-negative seconds.

    Values are quantized to integer microseconds and counted in
    log-linear buckets: values below ``2**precision_bits`` µs get one
    bucket each (exact), and every further power-of-two magnitude is
    split into ``2**precision_bits`` equal sub-buckets.  The worst-case
    relative quantization error is therefore ``2**-(precision_bits+1)``
    (~0.4% at the default 7 bits), independent of the value's size —
    the HdrHistogram guarantee.

    Percentile reads walk the non-empty buckets (O(buckets · log
    buckets) with the sparse dict representation) instead of sorting
    the sample list, so they are cheap enough to call per-completion.
    """

    __slots__ = ("precision_bits", "_sub_count", "_counts", "_total", "_max_units")

    def __init__(self, precision_bits: int = 7) -> None:
        if not 1 <= precision_bits <= 14:
            raise ValueError("precision_bits must be in [1, 14]")
        self.precision_bits = precision_bits
        self._sub_count = 1 << precision_bits
        self._counts: Dict[int, int] = {}
        self._total = 0
        self._max_units = 0

    # -- unit/bucket mapping ---------------------------------------------------
    @staticmethod
    def _units(seconds: float) -> int:
        """Quantize to integer microseconds (half-up)."""
        return int(seconds * 1e6 + 0.5)

    def _index(self, units: int) -> int:
        """Bucket index for a microsecond count.

        ``units < sub_count`` map 1:1 (exact); above that, a value in
        magnitude ``k`` (``units in [sub<<k, sub<<(k+1))``) lands at
        ``k*sub + (units >> k)`` — contiguous, monotone, and unique.
        """
        sub = self._sub_count
        if units < sub:
            return units
        shift = units.bit_length() - self.precision_bits - 1
        return shift * sub + (units >> shift)

    def _bucket_mid_seconds(self, index: int) -> float:
        """Representative (midpoint) value of a bucket, in seconds."""
        sub = self._sub_count
        if index < sub:
            return index / 1e6
        shift = index // sub - 1
        low = (index - shift * sub) << shift
        width = 1 << shift
        return (low + (width - 1) * 0.5) / 1e6

    def _bucket_high_units(self, index: int) -> int:
        """Highest microsecond count a bucket covers (inclusive)."""
        sub = self._sub_count
        if index < sub:
            return index
        shift = index // sub - 1
        return (((index - shift * sub) + 1) << shift) - 1

    # -- recording -------------------------------------------------------------
    def record(self, seconds: float) -> None:
        units = self._units(seconds)
        index = self._index(units)
        self._counts[index] = self._counts.get(index, 0) + 1
        self._total += 1
        if units > self._max_units:
            self._max_units = units

    @property
    def total(self) -> int:
        return self._total

    @property
    def bucket_count(self) -> int:
        """Number of non-empty buckets (the O(buckets) in reads)."""
        return len(self._counts)

    # -- queries ---------------------------------------------------------------
    def percentile(self, p: float) -> float:
        """Value at percentile ``p`` (bucket midpoint; max is exact)."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile out of range: {p}")
        if self._total == 0:
            raise ValueError("no samples recorded")
        if p >= 100.0:
            return self._max_units / 1e6
        target = max(1, int(p / 100.0 * self._total + 0.5))
        cumulative = 0
        for index in sorted(self._counts):
            cumulative += self._counts[index]
            if cumulative >= target:
                return self._bucket_mid_seconds(index)
        return self._max_units / 1e6

    def mean(self) -> float:
        if self._total == 0:
            raise ValueError("no samples recorded")
        acc = 0.0
        for index, count in self._counts.items():
            acc += self._bucket_mid_seconds(index) * count
        return acc / self._total

    def max(self) -> float:
        if self._total == 0:
            raise ValueError("no samples recorded")
        return self._max_units / 1e6

    def count_at_or_below(self, seconds: float) -> int:
        """Number of recorded values at or under ``seconds``."""
        threshold = self._units(seconds)
        within = 0
        for index, count in self._counts.items():
            if self._bucket_high_units(index) <= threshold:
                within += count
        return within

    def merge(self, other: "BucketedHistogram") -> "BucketedHistogram":
        """Fold ``other``'s counts into this histogram (bucket-wise add).

        Exact by construction: both histograms quantized their samples
        with the same bucket mapping, so adding counts per bucket gives
        precisely the histogram of the union stream.  Requires matching
        ``precision_bits`` — merging across resolutions would silently
        re-quantize one side.
        """
        if other.precision_bits != self.precision_bits:
            raise ValueError(
                "cannot merge histograms with different precision: "
                f"{self.precision_bits} vs {other.precision_bits}"
            )
        for index, count in other._counts.items():
            self._counts[index] = self._counts.get(index, 0) + count
        self._total += other._total
        if other._max_units > self._max_units:
            self._max_units = other._max_units
        return self

    def clear(self) -> None:
        self._counts.clear()
        self._total = 0
        self._max_units = 0


class LatencyRecorder:
    """Accumulates latencies (seconds) and answers percentile queries.

    ``backend="exact"`` (the default) keeps every sample and sorts on
    demand — exact percentiles.  ``backend="hdr"`` counts samples into
    a :class:`BucketedHistogram` — percentiles are accurate to the
    bucket resolution (~0.4%) but reads cost O(buckets) instead of
    O(n log n), which is what continuous in-run tracking (e.g. the
    StorageBench stall monitor) needs.
    """

    def __init__(self, backend: str = "exact") -> None:
        if backend not in ("exact", "hdr"):
            raise ValueError(f"unknown recorder backend {backend!r}")
        self.backend = backend
        self._samples: List[float] = []
        self._sorted = True
        self._hist = BucketedHistogram() if backend == "hdr" else None
        self.errors = 0

    def __len__(self) -> int:
        if self._hist is not None:
            return self._hist.total
        return len(self._samples)

    def record(self, latency_seconds: float) -> None:
        if latency_seconds < 0:
            raise ValueError("latency must be non-negative")
        if self._hist is not None:
            self._hist.record(latency_seconds)
            return
        self._samples.append(latency_seconds)
        self._sorted = False

    def record_error(self) -> None:
        """Count a failed request (timeouts, 5xx) without a latency."""
        self.errors += 1

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True

    def percentile(self, p: float) -> float:
        """Exact percentile via linear interpolation; p in [0, 100]."""
        if self._hist is not None:
            return self._hist.percentile(p)
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile out of range: {p}")
        if not self._samples:
            raise ValueError("no samples recorded")
        self._ensure_sorted()
        if len(self._samples) == 1:
            return self._samples[0]
        rank = p / 100.0 * (len(self._samples) - 1)
        lower = int(rank)
        upper = min(lower + 1, len(self._samples) - 1)
        weight = rank - lower
        return self._samples[lower] * (1.0 - weight) + self._samples[upper] * weight

    def mean(self) -> float:
        if self._hist is not None:
            return self._hist.mean()
        if not self._samples:
            raise ValueError("no samples recorded")
        return sum(self._samples) / len(self._samples)

    def max(self) -> float:
        if self._hist is not None:
            return self._hist.max()
        if not self._samples:
            raise ValueError("no samples recorded")
        self._ensure_sorted()
        return self._samples[-1]

    def fraction_below(self, threshold_seconds: float) -> float:
        """Fraction of successful requests at or under the threshold.

        This is SLO compliance when the threshold is the latency
        objective; errors count as misses (the denominator includes
        them) because a failed request never met its SLO.
        """
        total = len(self) + self.errors
        if total == 0:
            return 1.0
        if self._hist is not None:
            return self._hist.count_at_or_below(threshold_seconds) / total
        self._ensure_sorted()
        within = bisect.bisect_right(self._samples, threshold_seconds)
        return within / total

    def error_rate(self) -> float:
        total = len(self) + self.errors
        if total == 0:
            return 0.0
        return self.errors / total

    def summary(self) -> Dict[str, float]:
        """The latency distribution DCPerf reports per benchmark."""
        if len(self) == 0:
            return {"count": 0, "errors": self.errors}
        return {
            "count": len(self),
            "errors": self.errors,
            "mean": self.mean(),
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.max(),
        }

    def snapshot(self) -> Dict[str, float]:
        """A total version of :meth:`summary`: never raises.

        A blackout scenario at a tight deadline can finish a window
        with *only* errors; callers that want the full latency-field
        shape regardless (dashboards, report diffing) get explicit
        zero latencies with ``errors`` populated instead of a
        ``ValueError`` from the percentile math.
        """
        if len(self) == 0:
            return {
                "count": 0,
                "errors": self.errors,
                "mean": 0.0,
                "p50": 0.0,
                "p90": 0.0,
                "p95": 0.0,
                "p99": 0.0,
                "max": 0.0,
            }
        return self.summary()

    def merge(self, other: "LatencyRecorder") -> "LatencyRecorder":
        """Fold ``other`` into this recorder.

        The merged recorder answers every query exactly as if it had
        recorded the union of both sample streams (plus both error
        counts).  On the exact backend the two already-sorted sample
        lists are merged in O(n + m) — no re-sort; on the HDR backend
        bucket counts add (:meth:`BucketedHistogram.merge`).  Backends
        must match: a bucketed side cannot give its samples back.
        """
        if other.backend != self.backend:
            raise ValueError(
                "cannot merge recorders with different backends: "
                f"{self.backend!r} vs {other.backend!r}"
            )
        if self._hist is not None:
            assert other._hist is not None
            self._hist.merge(other._hist)
        else:
            self._ensure_sorted()
            other._ensure_sorted()
            self._samples = list(heapq.merge(self._samples, other._samples))
            self._sorted = True
        self.errors += other.errors
        return self

    def mergeable_state(self) -> Dict[str, object]:
        """Codec-safe full state for cross-process shard merging.

        The returned tree contains only JSON/binary-codec primitives
        (ints, floats, strings, lists, dicts), round-trips losslessly
        through both codecs, and reconstructs via :meth:`from_state`.
        Exact backends ship their (sorted) samples; HDR backends ship
        sparse bucket counts in ascending bucket order — canonical, so
        two transports of the same recorder are byte-identical.
        """
        if self._hist is not None:
            hist = self._hist
            return {
                "backend": "hdr",
                "errors": self.errors,
                "precision_bits": hist.precision_bits,
                "buckets": [
                    [index, hist._counts[index]] for index in sorted(hist._counts)
                ],
                "total": hist._total,
                "max_units": hist._max_units,
            }
        self._ensure_sorted()
        return {
            "backend": "exact",
            "errors": self.errors,
            "samples": list(self._samples),
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "LatencyRecorder":
        """Reconstruct a recorder from :meth:`mergeable_state` output."""
        backend = str(state["backend"])
        recorder = cls(backend=backend)
        recorder.errors = int(state["errors"])  # type: ignore[arg-type]
        if backend == "hdr":
            hist = BucketedHistogram(precision_bits=int(state["precision_bits"]))  # type: ignore[arg-type]
            for index, count in state["buckets"]:  # type: ignore[union-attr]
                hist._counts[int(index)] = int(count)
            hist._total = int(state["total"])  # type: ignore[arg-type]
            hist._max_units = int(state["max_units"])  # type: ignore[arg-type]
            recorder._hist = hist
        else:
            recorder._samples = [float(s) for s in state["samples"]]  # type: ignore[union-attr]
            recorder._sorted = True  # states are canonical: sorted
        return recorder

    def reset(self) -> None:
        if self._hist is not None:
            self._hist.clear()
        self._samples.clear()
        self._sorted = True
        self.errors = 0
