"""Latency recording with exact percentiles.

Collects per-request latencies and computes percentiles by sorting
(exact, not approximated — sample counts in the simulations are small
enough that a t-digest would be overkill and less testable).
"""

from __future__ import annotations

import bisect
from typing import Dict, List


class LatencyRecorder:
    """Accumulates latencies (seconds) and answers percentile queries."""

    def __init__(self) -> None:
        self._samples: List[float] = []
        self._sorted = True
        self.errors = 0

    def __len__(self) -> int:
        return len(self._samples)

    def record(self, latency_seconds: float) -> None:
        if latency_seconds < 0:
            raise ValueError("latency must be non-negative")
        self._samples.append(latency_seconds)
        self._sorted = False

    def record_error(self) -> None:
        """Count a failed request (timeouts, 5xx) without a latency."""
        self.errors += 1

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True

    def percentile(self, p: float) -> float:
        """Exact percentile via linear interpolation; p in [0, 100]."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile out of range: {p}")
        if not self._samples:
            raise ValueError("no samples recorded")
        self._ensure_sorted()
        if len(self._samples) == 1:
            return self._samples[0]
        rank = p / 100.0 * (len(self._samples) - 1)
        lower = int(rank)
        upper = min(lower + 1, len(self._samples) - 1)
        weight = rank - lower
        return self._samples[lower] * (1.0 - weight) + self._samples[upper] * weight

    def mean(self) -> float:
        if not self._samples:
            raise ValueError("no samples recorded")
        return sum(self._samples) / len(self._samples)

    def max(self) -> float:
        if not self._samples:
            raise ValueError("no samples recorded")
        self._ensure_sorted()
        return self._samples[-1]

    def fraction_below(self, threshold_seconds: float) -> float:
        """Fraction of successful requests at or under the threshold.

        This is SLO compliance when the threshold is the latency
        objective; errors count as misses (the denominator includes
        them) because a failed request never met its SLO.
        """
        total = len(self._samples) + self.errors
        if total == 0:
            return 1.0
        self._ensure_sorted()
        within = bisect.bisect_right(self._samples, threshold_seconds)
        return within / total

    def error_rate(self) -> float:
        total = len(self._samples) + self.errors
        if total == 0:
            return 0.0
        return self.errors / total

    def summary(self) -> Dict[str, float]:
        """The latency distribution DCPerf reports per benchmark."""
        if not self._samples:
            return {"count": 0, "errors": self.errors}
        return {
            "count": len(self._samples),
            "errors": self.errors,
            "mean": self.mean(),
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.max(),
        }

    def snapshot(self) -> Dict[str, float]:
        """A total version of :meth:`summary`: never raises.

        A blackout scenario at a tight deadline can finish a window
        with *only* errors; callers that want the full latency-field
        shape regardless (dashboards, report diffing) get explicit
        zero latencies with ``errors`` populated instead of a
        ``ValueError`` from the percentile math.
        """
        if not self._samples:
            return {
                "count": 0,
                "errors": self.errors,
                "mean": 0.0,
                "p50": 0.0,
                "p90": 0.0,
                "p95": 0.0,
                "p99": 0.0,
                "max": 0.0,
            }
        return self.summary()

    def reset(self) -> None:
        self._samples.clear()
        self._sorted = True
        self.errors = 0
