"""Post-run analysis: fidelity comparison, projection error, Perf/Watt."""

from repro.analysis.fidelity import (
    FidelityComparison,
    compare_profiles,
    projection_errors,
)
from repro.analysis.perfwatt import normalized_perf_per_watt
from repro.analysis.tables import ascii_bar_chart, series_table
from repro.analysis.capacity import compare_procurement, servers_needed
from repro.analysis.loadcurve import LoadCurve, sweep_load
from repro.analysis.regression import RegressionReport, Verdict, compare_suite_runs

__all__ = [
    "FidelityComparison",
    "compare_profiles",
    "projection_errors",
    "normalized_perf_per_watt",
    "series_table",
    "ascii_bar_chart",
    "servers_needed",
    "compare_procurement",
    "LoadCurve",
    "sweep_load",
    "compare_suite_runs",
    "RegressionReport",
    "Verdict",
]
