"""Capacity planning and procurement comparison.

The paper's headline use case is procurement: pick the CPU that serves
the fleet's demand at the best cost.  Two ingredients from Section 2.3
are implemented here:

* **Failover headroom** — regions must absorb a sibling region's load
  when it fails entirely, so per-region capacity is sized for the
  post-failover demand, not the steady state.
* **Fleet cost** — servers needed times TCO per server-year, letting
  Perf/Watt and Perf/$ (which "are not always aligned") be compared at
  fleet scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.hw.tco import CostEffectiveness


def servers_needed(
    total_demand: float,
    per_server_capacity: float,
    target_utilization: float = 0.75,
    regions: int = 3,
) -> int:
    """Servers for a demand with single-region-failure headroom.

    The fleet spreads across ``regions``; when one fails, the remaining
    ``regions - 1`` must serve everything while staying at or below
    ``target_utilization``.  Returns the total server count across all
    regions.
    """
    if total_demand <= 0:
        raise ValueError("total_demand must be positive")
    if per_server_capacity <= 0:
        raise ValueError("per_server_capacity must be positive")
    if not 0.0 < target_utilization <= 1.0:
        raise ValueError("target_utilization must be in (0, 1]")
    if regions < 2:
        raise ValueError("need at least 2 regions for failover")
    # After a failure, each surviving region serves demand/(regions-1).
    per_region_peak = total_demand / (regions - 1)
    per_region_servers = math.ceil(
        per_region_peak / (per_server_capacity * target_utilization)
    )
    return per_region_servers * regions


@dataclass(frozen=True)
class ProcurementOption:
    """One SKU candidate evaluated against a fleet demand."""

    cost: CostEffectiveness
    servers: int
    fleet_power_w: float
    fleet_tco_per_year_usd: float

    @property
    def sku(self) -> str:
        return self.cost.sku


def compare_procurement(
    candidates: List[CostEffectiveness],
    total_demand: float,
    target_utilization: float = 0.75,
    regions: int = 3,
) -> Dict[str, ProcurementOption]:
    """Size the fleet per candidate and total its power and cost."""
    if not candidates:
        raise ValueError("no candidates to compare")
    options: Dict[str, ProcurementOption] = {}
    for candidate in candidates:
        count = servers_needed(
            total_demand,
            candidate.performance,
            target_utilization=target_utilization,
            regions=regions,
        )
        options[candidate.sku] = ProcurementOption(
            cost=candidate,
            servers=count,
            fleet_power_w=count * candidate.average_power_w,
            fleet_tco_per_year_usd=count * candidate.tco_per_year_usd,
        )
    return options


def cheapest(options: Dict[str, ProcurementOption]) -> str:
    """SKU with the lowest fleet TCO (the Perf/$ winner at scale)."""
    return min(options.values(), key=lambda o: o.fleet_tco_per_year_usd).sku


def most_power_efficient(options: Dict[str, ProcurementOption]) -> str:
    """SKU with the lowest fleet power (the Perf/Watt winner at scale)."""
    return min(options.values(), key=lambda o: o.fleet_power_w).sku
