"""Perf/Watt computation (Section 2.3, Figure 14).

The paper's method: divide each benchmark's performance number by the
server's average wall power during the steady-state run, normalize to
the SKU1 baseline, and take the geometric mean across the suite.
"""

from __future__ import annotations

from typing import Dict

from repro.core.scoring import geometric_mean


def normalized_perf_per_watt(
    candidate: Dict[str, float], baseline: Dict[str, float]
) -> Dict[str, float]:
    """Per-benchmark Perf/Watt ratios, candidate vs baseline machine.

    Inputs map benchmark name to raw Perf/Watt (metric / watts); the
    output adds a ``"dcperf"`` entry holding the suite geomean.
    """
    if set(candidate) != set(baseline):
        raise ValueError(
            "candidate and baseline must cover the same benchmarks: "
            f"{sorted(candidate)} vs {sorted(baseline)}"
        )
    if not candidate:
        raise ValueError("empty Perf/Watt mappings")
    normalized = {}
    for name in candidate:
        if baseline[name] <= 0 or candidate[name] <= 0:
            raise ValueError(f"non-positive Perf/Watt for {name!r}")
        normalized[name] = candidate[name] / baseline[name]
    normalized["dcperf"] = geometric_mean(normalized.values())
    return normalized
