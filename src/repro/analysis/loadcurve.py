"""Load-response curves: throughput/latency/utilization vs offered load.

The generic instrument behind Figure 13-style plots: sweep a workload's
``load_scale`` and record what the server actually delivers.  Useful
for locating the knee (where goodput saturates), checking SLO headroom,
and comparing saturation behaviour across SKUs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Sequence

from repro.workloads.base import RunConfig, Workload


@dataclass(frozen=True)
class LoadPoint:
    """One point on the load-response curve."""

    load_scale: float
    throughput: float
    cpu_util: float
    p95_seconds: float

    @property
    def saturated(self) -> bool:
        return self.cpu_util >= 0.98


@dataclass(frozen=True)
class LoadCurve:
    """A swept curve plus derived features."""

    workload: str
    sku: str
    points: List[LoadPoint]

    def peak_throughput(self) -> float:
        return max(p.throughput for p in self.points)

    def knee_load_scale(self) -> float:
        """The smallest load scale achieving >= 97% of peak goodput."""
        peak = self.peak_throughput()
        for point in self.points:
            if point.throughput >= 0.97 * peak:
                return point.load_scale
        return self.points[-1].load_scale  # pragma: no cover

    def degrades_past_knee(self, tolerance: float = 0.05) -> bool:
        """True when goodput drops measurably beyond the knee (the
        CloudSuite overload signature)."""
        peak = self.peak_throughput()
        return self.points[-1].throughput < (1.0 - tolerance) * peak


def sweep_load(
    workload: Workload,
    base_config: RunConfig,
    load_scales: Sequence[float],
) -> LoadCurve:
    """Run the workload at each load scale and assemble the curve."""
    if not load_scales:
        raise ValueError("load_scales must be non-empty")
    if list(load_scales) != sorted(load_scales):
        raise ValueError("load_scales must be ascending")
    points: List[LoadPoint] = []
    for scale in load_scales:
        config = dataclasses.replace(
            base_config, load_scale=base_config.load_scale * scale
        )
        result = workload.run(config)
        points.append(
            LoadPoint(
                load_scale=scale,
                throughput=result.throughput_rps,
                cpu_util=result.cpu_util,
                p95_seconds=result.latency.get("p95", 0.0),
            )
        )
    return LoadCurve(
        workload=workload.name, sku=base_config.sku_name, points=points
    )
