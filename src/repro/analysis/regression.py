"""Suite-to-suite regression detection.

Section 1 ("Broad Usage"): DCPerf "can help evaluate performance
improvements or regressions in common software components it utilizes,
including compilers, runtimes... or the OS kernel", the pre-production
role Meta's ServiceLab plays for production code.  Section 5.3 is an
instance: the kernel 6.4 -> 6.9 comparison surfaced a scheduler
scalability bug.

This module compares two :class:`~repro.core.suite.SuiteReport` runs
(before/after a software change) and flags per-benchmark deltas beyond
a noise threshold, plus the suite-level verdict.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from repro.core.suite import SuiteReport


class Verdict(enum.Enum):
    REGRESSION = "regression"
    IMPROVEMENT = "improvement"
    NEUTRAL = "neutral"


@dataclass(frozen=True)
class BenchmarkDelta:
    """One benchmark's before/after comparison."""

    benchmark: str
    before: float
    after: float
    relative_change: float
    verdict: Verdict


@dataclass(frozen=True)
class RegressionReport:
    """Full before/after comparison of two suite runs."""

    deltas: List[BenchmarkDelta]
    suite_relative_change: float
    verdict: Verdict

    def regressions(self) -> List[BenchmarkDelta]:
        return [d for d in self.deltas if d.verdict is Verdict.REGRESSION]

    def improvements(self) -> List[BenchmarkDelta]:
        return [d for d in self.deltas if d.verdict is Verdict.IMPROVEMENT]

    def worst(self) -> BenchmarkDelta:
        return min(self.deltas, key=lambda d: d.relative_change)


def _classify(change: float, threshold: float) -> Verdict:
    if change <= -threshold:
        return Verdict.REGRESSION
    if change >= threshold:
        return Verdict.IMPROVEMENT
    return Verdict.NEUTRAL


def compare_suite_runs(
    before: SuiteReport,
    after: SuiteReport,
    noise_threshold: float = 0.03,
) -> RegressionReport:
    """Compare two suite runs on the same SKU.

    ``noise_threshold`` is the relative change below which a delta is
    considered measurement noise (simulation runs are deterministic,
    but real deployments are not; 3% mirrors typical run-to-run noise
    budgets).
    """
    if before.sku != after.sku:
        raise ValueError(
            f"suite runs must target the same SKU: {before.sku} vs {after.sku}"
        )
    if set(before.reports) != set(after.reports):
        raise ValueError("suite runs cover different benchmark sets")
    if not 0.0 <= noise_threshold < 1.0:
        raise ValueError("noise_threshold must be in [0, 1)")

    deltas: List[BenchmarkDelta] = []
    for name in before.reports:
        b = before.reports[name].metric_value
        a = after.reports[name].metric_value
        if b <= 0:
            raise ValueError(f"non-positive baseline metric for {name!r}")
        change = (a - b) / b
        deltas.append(
            BenchmarkDelta(
                benchmark=name,
                before=b,
                after=a,
                relative_change=change,
                verdict=_classify(change, noise_threshold),
            )
        )
    suite_change = (
        after.overall_score - before.overall_score
    ) / before.overall_score
    return RegressionReport(
        deltas=sorted(deltas, key=lambda d: d.relative_change),
        suite_relative_change=suite_change,
        verdict=_classify(suite_change, noise_threshold),
    )
