"""Plain-text rendering of the paper's figures for the bench harness."""

from __future__ import annotations

from typing import Dict, List, Sequence


def series_table(
    row_labels: Sequence[str],
    series: Dict[str, Sequence[float]],
    value_format: str = "{:.2f}",
) -> str:
    """Render named series against a shared set of row labels.

    Used for figure reproductions like "perf per SKU per suite".
    """
    if not series:
        raise ValueError("no series to render")
    for name, values in series.items():
        if len(values) != len(row_labels):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(row_labels)} rows"
            )
    headers = [""] + list(series)
    widths = [max(len(h), 10) for h in headers]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for i, label in enumerate(row_labels):
        cells = [label.ljust(widths[0])]
        for j, name in enumerate(series):
            cells.append(value_format.format(series[name][i]).ljust(widths[j + 1]))
        lines.append("  ".join(cells).rstrip())
    return "\n".join(lines)


def ascii_bar_chart(
    values: Dict[str, float], width: int = 40, value_format: str = "{:.2f}"
) -> str:
    """One horizontal bar per entry, scaled to the maximum value."""
    if not values:
        raise ValueError("no values to chart")
    peak = max(values.values())
    if peak <= 0:
        raise ValueError("bar chart requires a positive maximum")
    label_width = max(len(k) for k in values)
    lines: List[str] = []
    for name, value in values.items():
        bar = "#" * max(1, round(value / peak * width)) if value > 0 else ""
        lines.append(
            f"{name.ljust(label_width)}  {bar} {value_format.format(value)}"
        )
    return "\n".join(lines)
