"""Benchmark-vs-production fidelity metrics.

The paper's evaluation method: run the benchmark and its production
counterpart, compare their microarchitecture profiles metric by metric
(Figures 4-12), and use large disagreements to drive benchmark
improvements.  This module computes those comparisons, plus the
Figure 3 projection errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.uarch.projection import SteadyState


@dataclass(frozen=True)
class FidelityComparison:
    """Per-metric relative differences between benchmark and production."""

    benchmark: str
    production: str
    differences: Dict[str, float]

    def worst_metric(self) -> str:
        """The metric with the largest absolute relative difference."""
        return max(self.differences, key=lambda k: abs(self.differences[k]))

    def within(self, tolerance: float) -> bool:
        """True when every metric is within the relative tolerance."""
        return all(abs(v) <= tolerance for v in self.differences.values())


def _rel(benchmark_value: float, production_value: float) -> float:
    if production_value == 0:
        return 0.0 if benchmark_value == 0 else float("inf")
    return (benchmark_value - production_value) / abs(production_value)


def compare_profiles(
    benchmark_state: SteadyState, production_state: SteadyState
) -> FidelityComparison:
    """Compare two steady states across the paper's fidelity metrics."""
    diffs = {
        "ipc": _rel(
            benchmark_state.ipc_per_physical_core,
            production_state.ipc_per_physical_core,
        ),
        "l1i_mpki": _rel(
            benchmark_state.misses.l1i_mpki, production_state.misses.l1i_mpki
        ),
        "llc_mpki": _rel(
            benchmark_state.misses.llc_mpki, production_state.misses.llc_mpki
        ),
        "membw": _rel(
            benchmark_state.memory_bandwidth_gbps,
            production_state.memory_bandwidth_gbps,
        ),
        "freq": _rel(
            benchmark_state.effective_freq_ghz,
            production_state.effective_freq_ghz,
        ),
        "frontend": benchmark_state.tmam.frontend - production_state.tmam.frontend,
        "backend": benchmark_state.tmam.backend - production_state.tmam.backend,
        "retiring": benchmark_state.tmam.retiring - production_state.tmam.retiring,
        "power": _rel(benchmark_state.power.total, production_state.power.total),
    }
    return FidelityComparison(
        benchmark=benchmark_state.workload,
        production=production_state.workload,
        differences=diffs,
    )


def projection_errors(
    suite_scores: Sequence[float], production_scores: Sequence[float]
) -> List[float]:
    """Figure 3: per-SKU relative error of a suite vs production.

    Both sequences must be normalized to the same baseline SKU (index 0
    is the baseline and yields 0 error by construction).
    """
    if len(suite_scores) != len(production_scores):
        raise ValueError("score sequences must be equal length")
    if not suite_scores:
        raise ValueError("empty score sequences")
    errors = []
    for suite, prod in zip(suite_scores, production_scores):
        if prod <= 0:
            raise ValueError("production scores must be positive")
        errors.append((suite - prod) / prod)
    return errors
