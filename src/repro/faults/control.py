"""SLO-triggered control behaviors: shed, admit, brown out.

Production fleets survive overload by *not doing* some of the work:
load shedders drop requests at admission before they queue, admission
controllers cap in-flight work per instance, and brownout responders
serve degraded (cheaper) responses while the SLO is breached.  This
module models those three behaviors as deterministic controllers driven
by the :class:`~repro.loadgen.windows.WindowedSloTracker`'s
completion-counted window signals:

* :class:`LoadShedder` — CoDel-style target/interval control of a drop
  probability: when the windowed control percentile stays above the
  target latency (or the window is error-saturated) for
  ``shed_interval_windows`` consecutive windows, the drop probability
  steps up; each healthy window decays it.  Per-request admission draws
  from the run's seeded RNG stream, so shed decisions replay
  byte-identically.
* :class:`AdmissionController` — per-instance in-flight caps mirroring
  :class:`~repro.workloads.runner.InstanceSet`'s round-robin
  assignment: a request routed to a full instance is refused
  immediately instead of queueing behind work it would only slow down.
* :class:`BrownoutResponder` — publishes service-demand relief
  (degraded serving / replica scale-out) to attached targets the same
  way ``disk_degraded`` publishes device slowdowns: multiplicatively,
  with late-attach pickup.  Targets expose a ``relief_speedup``
  attribute (the :class:`~repro.oskernel.scheduler.CpuScheduler`
  surface); relief > 1.0 shrinks every burst.

:class:`SloControlPlane` bundles the tracker and the three controllers
behind one completion hook, which the
:class:`~repro.workloads.runner.BenchmarkHarness` installs when a
:class:`SloControlPolicy` is enabled on the run config.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from typing import Callable, Dict, List, Optional, Tuple

from repro.faults.errors import AdmissionRejectedError, RequestShedError
from repro.loadgen.windows import WindowedSloTracker, WindowSnapshot


@dataclass(frozen=True)
class SloControlPolicy:
    """Per-scenario configuration of the in-run SLO control plane.

    ``window_completions`` sets the decision cadence (completions per
    window — never wall time, so control decisions are deterministic);
    ``slo_latency_s`` is the latency objective goodput is judged
    against.  Each controller has its own enable flag so scenarios can
    mix behaviors; a policy with ``enabled=False`` leaves the harness
    byte-identical to a config without the field.
    """

    enabled: bool = True
    window_completions: int = 100
    slo_latency_s: float = 0.1
    # -- load shedder (CoDel-style target/interval) -----------------------
    shed_enabled: bool = True
    #: Control signal: the windowed percentile compared to the target.
    shed_percentile: float = 95.0
    #: Target latency for the control percentile (the CoDel "target").
    shed_target_latency_s: float = 0.1
    #: Consecutive breached windows before the drop probability steps
    #: up (the CoDel "interval", counted in windows).
    shed_interval_windows: int = 2
    #: Drop-probability increment per breach interval.
    shed_step: float = 0.05
    #: Multiplicative decay applied by each healthy window.
    shed_decay: float = 0.5
    #: Ceiling on the drop probability.
    shed_max_fraction: float = 0.95
    #: A window whose error rate exceeds this is a breach even when its
    #: latency percentiles look fine (deadline-dominated overload turns
    #: queueing into timeouts, not into recorded latency).
    shed_error_rate_threshold: float = 0.25
    # -- admission control ------------------------------------------------
    admit_enabled: bool = False
    #: In-flight requests one instance may hold; 0 disables the cap.
    admit_max_inflight_per_instance: int = 0
    # -- brownout responder -----------------------------------------------
    brownout_enabled: bool = False
    #: Service-demand reduction per relief step (0.25 = each step makes
    #: requests 25% cheaper: degraded serving / replica scale-out).
    brownout_relief: float = 0.25
    #: Consecutive breached windows before stepping relief up.
    brownout_trigger_windows: int = 2
    #: Consecutive healthy windows before stepping relief back down.
    brownout_recover_windows: int = 2
    #: Maximum relief steps (caps the degradation depth).
    brownout_max_steps: int = 2

    def __post_init__(self) -> None:
        if self.window_completions < 1:
            raise ValueError("window_completions must be >= 1")
        if self.slo_latency_s <= 0 or self.shed_target_latency_s <= 0:
            raise ValueError("latency objectives must be positive")
        if not 0.0 < self.shed_percentile <= 100.0:
            raise ValueError("shed_percentile must be in (0, 100]")
        if self.shed_interval_windows < 1:
            raise ValueError("shed_interval_windows must be >= 1")
        if not 0.0 < self.shed_step <= 1.0:
            raise ValueError("shed_step must be in (0, 1]")
        if not 0.0 <= self.shed_decay < 1.0:
            raise ValueError("shed_decay must be in [0, 1)")
        if not 0.0 < self.shed_max_fraction < 1.0:
            raise ValueError("shed_max_fraction must be in (0, 1)")
        if not 0.0 <= self.shed_error_rate_threshold <= 1.0:
            raise ValueError("shed_error_rate_threshold must be in [0, 1]")
        if self.admit_max_inflight_per_instance < 0:
            raise ValueError("admit_max_inflight_per_instance must be >= 0")
        if not 0.0 < self.brownout_relief < 1.0:
            raise ValueError("brownout_relief must be in (0, 1)")
        if self.brownout_trigger_windows < 1 or self.brownout_recover_windows < 1:
            raise ValueError("brownout window counts must be >= 1")
        if self.brownout_max_steps < 1:
            raise ValueError("brownout_max_steps must be >= 1")

    @classmethod
    def disabled(cls) -> "SloControlPolicy":
        """The no-op policy: the harness runs the untouched fast path."""
        return cls(enabled=False)

    def as_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SloControlPolicy":
        return cls(**payload)  # type: ignore[arg-type]


#: Shared default used by RunConfig (immutable, safe to share).
DISABLED_CONTROL = SloControlPolicy.disabled()


@dataclass
class SloControlStats:
    """Counters the control plane accumulates over a measurement window."""

    offered: int = 0
    admitted: int = 0
    shed: int = 0
    admission_rejections: int = 0
    breached_windows: int = 0
    healthy_windows: int = 0
    shed_steps: int = 0
    shed_recoveries: int = 0
    brownout_activations: int = 0
    brownout_recoveries: int = 0
    max_drop_probability: float = 0.0

    def reset(self) -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, type(getattr(self, name))(0))

    def as_extra(self) -> Dict[str, float]:
        """Flatten into ``slo_*`` keys for ``WorkloadResult.extra``."""
        return {
            f"slo_{name}": float(getattr(self, name))
            for name in self.__dataclass_fields__
        }


class LoadShedder:
    """Deterministic probabilistic admission under a latency target.

    The drop probability is a pure function of the window-breach
    history (itself completion-counted), and per-request coin flips
    come from a named seeded stream — and are only drawn while the
    probability is non-zero, so a run that never sheds consumes no
    entropy from the stream.
    """

    __slots__ = ("policy", "rng", "stats", "drop_probability", "_breach_streak")

    #: Drop probabilities below this decay to exactly zero (recovered).
    FLOOR = 0.005

    def __init__(
        self,
        policy: SloControlPolicy,
        rng: random.Random,
        stats: SloControlStats,
    ) -> None:
        self.policy = policy
        self.rng = rng
        self.stats = stats
        self.drop_probability = 0.0
        self._breach_streak = 0

    def admits(self) -> bool:
        """Per-request admission decision (False = shed this request)."""
        p = self.drop_probability
        if p <= 0.0:
            return True
        return self.rng.random() >= p

    def _breached(self, window: WindowSnapshot) -> bool:
        policy = self.policy
        if window.error_rate > policy.shed_error_rate_threshold:
            return True
        if window.completions == 0:
            return False
        if policy.shed_percentile >= 95.0:
            signal = window.p95 if policy.shed_percentile < 99.0 else window.p99
        else:
            signal = window.p50
        return signal > policy.shed_target_latency_s

    def on_window(self, window: WindowSnapshot) -> None:
        policy = self.policy
        stats = self.stats
        if self._breached(window):
            stats.breached_windows += 1
            self._breach_streak += 1
            if self._breach_streak >= policy.shed_interval_windows:
                self._breach_streak = 0
                self.drop_probability = min(
                    policy.shed_max_fraction,
                    self.drop_probability + policy.shed_step,
                )
                stats.shed_steps += 1
                if self.drop_probability > stats.max_drop_probability:
                    stats.max_drop_probability = self.drop_probability
        else:
            stats.healthy_windows += 1
            self._breach_streak = 0
            if self.drop_probability > 0.0:
                self.drop_probability *= policy.shed_decay
                if self.drop_probability < self.FLOOR:
                    self.drop_probability = 0.0
                    stats.shed_recoveries += 1


class AdmissionController:
    """Round-robin per-instance in-flight caps.

    Mirrors :class:`~repro.workloads.runner.InstanceSet`'s round-robin
    request placement: each arriving request is routed to the next
    instance, and refused outright when that instance already holds
    ``max_inflight`` requests.  Workloads that build an ``InstanceSet``
    register its instance count through the harness; single-instance
    workloads cap the whole server.  ``max_inflight == 0`` disables
    the cap (every acquire succeeds).
    """

    __slots__ = ("max_inflight", "stats", "_inflight", "_next")

    def __init__(self, max_inflight: int, stats: SloControlStats) -> None:
        self.max_inflight = max_inflight
        self.stats = stats
        self._inflight: List[int] = [0]
        self._next = 0

    @property
    def num_instances(self) -> int:
        return len(self._inflight)

    def set_instances(self, count: int) -> None:
        """Resize to an InstanceSet's instance count (drops counters).

        Called at workload setup before any request is admitted, so
        dropping the (all-zero) counters is safe.
        """
        if count < 1:
            raise ValueError("instance count must be >= 1")
        self._inflight = [0] * count
        self._next = 0

    def try_acquire(self) -> Optional[int]:
        """Admit to the next instance, or None when it is at its cap."""
        index = self._next
        self._next = (self._next + 1) % len(self._inflight)
        if self.max_inflight and self._inflight[index] >= self.max_inflight:
            self.stats.admission_rejections += 1
            return None
        self._inflight[index] += 1
        return index

    def release(self, index: int) -> None:
        self._inflight[index] -= 1

    @property
    def total_inflight(self) -> int:
        return sum(self._inflight)


class BrownoutResponder:
    """Publishes service-demand relief while the SLO is breached.

    Relief models what production brownout mode actually does — serve
    degraded responses (fewer ranking candidates, smaller feeds) and
    pull in spare replicas — which shows up in the simulation as a
    multiplicative *speedup* on CPU bursts.  Published exactly the way
    the fault injector's device channel publishes ``disk_degraded``
    slowdowns: to every attached target, with late-attach pickup, via
    the target's ``relief_speedup`` attribute.
    """

    __slots__ = (
        "policy",
        "stats",
        "steps",
        "_targets",
        "_breach_streak",
        "_healthy_streak",
        "adjustments",
    )

    def __init__(self, policy: SloControlPolicy, stats: SloControlStats) -> None:
        self.policy = policy
        self.stats = stats
        self.steps = 0
        self._targets: List[object] = []
        self._breach_streak = 0
        self._healthy_streak = 0
        #: (window index, relief factor) audit trail of every adjustment.
        self.adjustments: List[Tuple[int, float]] = []

    def attach(self, target) -> None:
        """Register a target exposing ``relief_speedup`` (late-attach safe)."""
        self._targets.append(target)
        target.relief_speedup = self.relief_factor

    @property
    def relief_factor(self) -> float:
        """Current burst speedup (>= 1.0; 1.0 = full-quality serving)."""
        return (1.0 / (1.0 - self.policy.brownout_relief)) ** self.steps

    def _publish(self) -> None:
        factor = self.relief_factor
        for target in self._targets:
            target.relief_speedup = factor

    def _breached(self, window: WindowSnapshot) -> bool:
        policy = self.policy
        if window.error_rate > policy.shed_error_rate_threshold:
            return True
        if window.completions == 0:
            return False
        return window.p95 > policy.slo_latency_s

    def on_window(self, window: WindowSnapshot) -> None:
        policy = self.policy
        if self._breached(window):
            self._healthy_streak = 0
            self._breach_streak += 1
            if (
                self._breach_streak >= policy.brownout_trigger_windows
                and self.steps < policy.brownout_max_steps
            ):
                self._breach_streak = 0
                self.steps += 1
                self.stats.brownout_activations += 1
                self.adjustments.append((window.index, self.relief_factor))
                self._publish()
        else:
            self._breach_streak = 0
            self._healthy_streak += 1
            if (
                self._healthy_streak >= policy.brownout_recover_windows
                and self.steps > 0
            ):
                self._healthy_streak = 0
                self.steps -= 1
                self.stats.brownout_recoveries += 1
                self.adjustments.append((window.index, self.relief_factor))
                self._publish()


class SloControlPlane:
    """Tracker + shedder + admission + brownout behind one hook.

    The harness constructs one per run when the config's
    :class:`SloControlPolicy` is enabled, points the open-loop
    generator's ``on_complete`` at :meth:`on_complete`, and wraps the
    workload handler with :meth:`wrap_handler` so admission decisions
    fire before any service work queues.
    """

    def __init__(
        self,
        policy: SloControlPolicy,
        rng: random.Random,
        clock: Callable[[], float],
    ) -> None:
        self.policy = policy
        self.stats = SloControlStats()
        self.tracker = WindowedSloTracker(
            window_completions=policy.window_completions,
            slo_latency_s=policy.slo_latency_s,
            clock=clock,
        )
        self.shedder = LoadShedder(policy, rng, self.stats)
        self.admission = AdmissionController(
            policy.admit_max_inflight_per_instance if policy.admit_enabled else 0,
            self.stats,
        )
        self.brownout = BrownoutResponder(policy, self.stats)
        #: Rejections raised but not yet observed by ``on_complete``.
        #: A shed/refused request fails synchronously inside the
        #: dispatcher's first resume, so its ``on_complete(None)`` fires
        #: before any other completion can interleave — the counter
        #: filters rejections out of the window signal exactly.
        self._pending_rejections = 0
        if policy.shed_enabled:
            self.tracker.subscribe(self.shedder.on_window)
        if policy.brownout_enabled:
            self.tracker.subscribe(self.brownout.on_window)

    # -- harness integration ---------------------------------------------------
    def on_complete(self, latency: Optional[float]) -> None:
        """Completion hook chaining into window-close control actions.

        Requests this plane itself rejected (shed or admission-refused)
        are excluded from the window signal: the controllers judge the
        latency and error rate of *served* traffic, as CoDel does.
        Counting rejections as window errors would be a positive
        feedback loop — shedding would push the error rate over the
        breach threshold, which would raise the drop probability, which
        would shed more — pinning the shedder at its ceiling.
        """
        if latency is None and self._pending_rejections:
            self._pending_rejections -= 1
            return
        self.tracker.on_complete(latency)

    def wrap_handler(self, handler):
        """Gate ``handler`` behind shed + admission decisions.

        Shed and refused requests fail *before* the inner handler is
        entered — no service work is queued for them, which is the
        whole point of shedding: capacity freed for admitted requests.
        """
        plane = self

        def controlled_handler(request):
            stats = plane.stats
            stats.offered += 1
            if not plane.shedder.admits():
                stats.shed += 1
                plane._pending_rejections += 1
                raise RequestShedError(
                    f"request shed at admission "
                    f"(drop probability {plane.shedder.drop_probability:.2f})"
                )
            instance = plane.admission.try_acquire()
            if instance is None:
                plane._pending_rejections += 1
                raise AdmissionRejectedError(
                    "instance at its in-flight cap "
                    f"({plane.admission.max_inflight})"
                )
            stats.admitted += 1
            try:
                yield from handler(request)
            finally:
                plane.admission.release(instance)

        return controlled_handler

    def reset_measurement(self) -> None:
        """Warmup-edge reset: clear counters, keep controller state.

        The drop probability, relief steps, and in-flight counts carry
        across the edge — a production box that was already shedding
        when the measurement window opened keeps shedding — while every
        reported counter restarts at zero.
        """
        self.stats.reset()
        self.tracker.reset()

    # -- reporting -------------------------------------------------------------
    def as_extra(self, batch: int, elapsed: float) -> Dict[str, object]:
        """Flattened ``slo_*`` signals for ``WorkloadResult.extra``."""
        tracker = self.tracker
        out: Dict[str, object] = self.stats.as_extra()
        out["slo_windows"] = float(tracker.windows_closed)
        out["slo_window_completions"] = float(self.policy.window_completions)
        out["slo_latency_s"] = self.policy.slo_latency_s
        out["slo_completions"] = float(tracker.completions)
        out["slo_errors"] = float(tracker.errors)
        out["slo_met"] = float(tracker.slo_met)
        out["slo_goodput_rps"] = tracker.slo_met * batch / elapsed
        out["slo_goodput_fraction"] = tracker.goodput_fraction()
        out["slo_p50"] = tracker.cumulative_percentile(50.0)
        out["slo_p95"] = tracker.cumulative_percentile(95.0)
        out["slo_p99"] = tracker.cumulative_percentile(99.0)
        out["slo_stall_seconds"] = tracker.stall_seconds
        out["slo_drop_probability"] = self.shedder.drop_probability
        out["slo_relief_factor"] = self.brownout.relief_factor
        out["slo_brownout_steps"] = float(self.brownout.steps)
        out["slo_instances"] = float(self.admission.num_instances)
        out["slo_window_series"] = tracker.window_series()
        return out
