"""Deterministic fault injection and client-side resilience.

``repro.faults`` models the permanent partial failure of production
datacenters — degraded cores, throttled clocks, crash-restarts, lossy
networks — as seed-scheduled simulation events, plus the client-side
primitives (deadlines, retries, circuit breakers, hedging) that
production services use to survive them.  Schedules ride inside
:class:`~repro.workloads.base.RunConfig`, so fault scenarios are part
of a run's fingerprint and replay byte-identically.
"""

from repro.faults.control import (
    DISABLED_CONTROL,
    AdmissionController,
    BrownoutResponder,
    LoadShedder,
    SloControlPlane,
    SloControlPolicy,
    SloControlStats,
)
from repro.faults.errors import (
    AdmissionRejectedError,
    CircuitOpenError,
    DeadlineExceededError,
    FaultError,
    NetworkLossError,
    RequestShedError,
    RetriesExhaustedError,
    ServerUnavailableError,
)
from repro.faults.injector import FaultInjector
from repro.faults.resilience import (
    DISABLED_POLICY,
    CircuitBreaker,
    ResiliencePolicy,
    ResilienceStats,
    ServiceClient,
)
from repro.faults.schedule import (
    EMPTY_SCHEDULE,
    FAULT_KINDS,
    FaultSchedule,
    FaultSpec,
)

__all__ = [
    "AdmissionController",
    "AdmissionRejectedError",
    "BrownoutResponder",
    "CircuitBreaker",
    "CircuitOpenError",
    "DISABLED_CONTROL",
    "DISABLED_POLICY",
    "DeadlineExceededError",
    "EMPTY_SCHEDULE",
    "FAULT_KINDS",
    "FaultError",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpec",
    "LoadShedder",
    "NetworkLossError",
    "RequestShedError",
    "ResiliencePolicy",
    "ResilienceStats",
    "RetriesExhaustedError",
    "ServerUnavailableError",
    "ServiceClient",
    "SloControlPlane",
    "SloControlPolicy",
    "SloControlStats",
]
