"""Deterministic fault schedules.

A :class:`FaultSchedule` is an ordered, immutable list of
:class:`FaultSpec` entries describing *when* (as fractions of the
measurement window, so one schedule is meaningful for any
``measure_seconds``) and *what* goes wrong on the simulated machine.
Schedules travel inside :class:`~repro.workloads.base.RunConfig`, are
digested into the run fingerprint, and are replayed by the
:class:`~repro.faults.injector.FaultInjector` as ordinary simulation
events — so the same seed and schedule produce byte-identical reports,
serial or parallel.

Magnitude semantics per kind:

========================  ====================================================
``server_slowdown``       multiplier (> 1.0) applied to every CPU burst
``server_crash``          magnitude ignored; the server refuses work
``freq_throttle``         fraction of effective frequency lost, in (0, 1)
``mem_pressure``          added slowdown fraction, scaled by memory intensity
``cache_flush``           added slowdown fraction while caches re-warm
``net_latency``           seconds of extra latency added to each client call
``net_loss``              probability each client attempt is dropped, [0, 1]
``disk_degraded``         multiplier (> 1.0) on block-device service times
========================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Iterator, List, Sequence, Tuple

#: Every fault kind the injector understands.
FAULT_KINDS = (
    "server_slowdown",
    "server_crash",
    "freq_throttle",
    "mem_pressure",
    "cache_flush",
    "net_latency",
    "net_loss",
    "disk_degraded",
)

#: Kinds whose magnitude is a probability/fraction bounded by 1.
_FRACTION_KINDS = ("freq_throttle", "net_loss")


@dataclass(frozen=True, order=True)
class FaultSpec:
    """One fault: what happens, when, for how long, how hard.

    ``start_frac`` and ``duration_frac`` are fractions of the
    measurement window; the injector converts them to absolute sim
    times once it knows the window.
    """

    kind: str
    start_frac: float
    duration_frac: float
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            known = ", ".join(FAULT_KINDS)
            raise ValueError(f"unknown fault kind {self.kind!r}; known: {known}")
        if not 0.0 <= self.start_frac < 1.0:
            raise ValueError(f"start_frac must be in [0, 1), got {self.start_frac}")
        if self.duration_frac <= 0.0 or self.start_frac + self.duration_frac > 1.0:
            raise ValueError(
                "duration_frac must be positive and the fault must end "
                f"within the window (start={self.start_frac}, "
                f"duration={self.duration_frac})"
            )
        if self.magnitude <= 0.0:
            raise ValueError(f"magnitude must be positive, got {self.magnitude}")
        if (
            self.kind in ("server_slowdown", "disk_degraded")
            and self.magnitude <= 1.0
        ):
            raise ValueError(f"{self.kind} magnitude is a multiplier > 1.0")
        if self.kind in _FRACTION_KINDS and self.magnitude >= 1.0:
            raise ValueError(f"{self.kind} magnitude must be a fraction < 1.0")

    def as_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultSpec":
        return cls(**payload)  # type: ignore[arg-type]


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, hashable sequence of faults.

    Empty schedules are falsy, so ``if config.faults:`` reads naturally.
    """

    faults: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.faults, tuple):
            object.__setattr__(self, "faults", tuple(self.faults))

    def __len__(self) -> int:
        return len(self.faults)

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.faults)

    def sorted_by_start(self) -> List[FaultSpec]:
        """Faults ordered by onset time (schedule order breaks ties)."""
        return sorted(self.faults, key=lambda f: f.start_frac)

    def as_dict(self) -> Dict[str, object]:
        return {"faults": [f.as_dict() for f in self.faults]}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultSchedule":
        specs = payload.get("faults", [])
        return cls(faults=tuple(FaultSpec.from_dict(dict(s)) for s in specs))

    @classmethod
    def of(cls, *faults: FaultSpec) -> "FaultSchedule":
        return cls(faults=tuple(faults))


#: The shared "no faults" schedule used as the RunConfig default.
EMPTY_SCHEDULE = FaultSchedule()


def merge(schedules: Sequence[FaultSchedule]) -> FaultSchedule:
    """Concatenate schedules (the injector orders by start time)."""
    out: List[FaultSpec] = []
    for schedule in schedules:
        out.extend(schedule.faults)
    return FaultSchedule(faults=tuple(out))
