"""Fault-domain exception hierarchy.

These deliberately do **not** subclass
:class:`repro.core.errors.DCPerfError`: faults are *simulated* service
failures that flow through workload models and resilience primitives,
not framework errors — and keeping this module import-free lets the
scheduler and the sim layer raise them without dragging in
``repro.core`` (whose package ``__init__`` imports the executor).
"""

from __future__ import annotations


class FaultError(Exception):
    """Base class for simulated-fault failures seen by clients."""


class ServerUnavailableError(FaultError):
    """The simulated server is crashed/restarting; the call is refused."""


class NetworkLossError(FaultError):
    """The request (or its reply) was dropped by the network fault."""


class DeadlineExceededError(FaultError):
    """The call did not complete within the client's deadline."""


class CircuitOpenError(FaultError):
    """The client's circuit breaker is open; the call failed fast."""


class RequestShedError(FaultError):
    """Dropped at admission by the SLO control plane's load shedder.

    Shed requests fail fast — before any service work is queued — so
    the capacity they would have consumed serves admitted requests
    instead.  Clients see them as immediate errors (production 429s).
    """


class AdmissionRejectedError(FaultError):
    """Refused at admission: the target instance is at its in-flight cap."""


class RetriesExhaustedError(FaultError):
    """Every attempt (including retries) failed.

    ``attempts`` records how many attempts were made; ``last`` holds the
    final attempt's failure.
    """

    def __init__(self, attempts: int, last: BaseException) -> None:
        super().__init__(f"all {attempts} attempt(s) failed: {last}")
        self.attempts = attempts
        self.last = last
