"""Client-side resilience primitives: the machinery that survives faults.

Production datacenter clients never issue a bare RPC: every call
carries a deadline, failed calls retry with exponential backoff and
jitter, sustained failure trips a circuit breaker, and tail-sensitive
services hedge slow requests.  :class:`ServiceClient` packages those
four primitives around any simulated piece of work (a handler
generator), each toggleable through :class:`ResiliencePolicy`, and
accounts for everything in :class:`ResilienceStats` — the raw material
of the ``resilience`` report hook.

Determinism: every random draw (backoff jitter, simulated packet loss)
comes from a named RNG stream, and all timing is simulation time, so a
(seed, schedule, policy) triple replays byte-identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from typing import Callable, Dict, Generator, Optional

from repro.faults.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    FaultError,
    NetworkLossError,
    RetriesExhaustedError,
    ServerUnavailableError,
)
from repro.faults.injector import FaultInjector
from repro.sim.engine import Environment, Process
from repro.sim.events import any_of


@dataclass(frozen=True)
class ResiliencePolicy:
    """Per-scenario configuration of every client-side primitive.

    Zero (or ``None``-like) values disable the corresponding feature:
    ``deadline_s=0`` means no deadline, ``max_retries=0`` means one
    attempt only, ``hedge_delay_s=0`` disables hedging, and
    ``breaker_failure_threshold=0`` disables the circuit breaker.
    ``slo_latency_s`` is the per-request latency objective the
    ``resilience`` hook reports compliance against.
    """

    enabled: bool = True
    deadline_s: float = 0.25
    max_retries: int = 2
    backoff_base_s: float = 0.002
    backoff_multiplier: float = 2.0
    jitter_frac: float = 0.5
    breaker_failure_threshold: int = 10
    breaker_reset_s: float = 0.05
    hedge_delay_s: float = 0.0
    slo_latency_s: float = 0.1

    def __post_init__(self) -> None:
        if self.deadline_s < 0 or self.backoff_base_s < 0:
            raise ValueError("durations must be non-negative")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1.0")
        if not 0.0 <= self.jitter_frac <= 1.0:
            raise ValueError("jitter_frac must be in [0, 1]")
        if self.breaker_failure_threshold < 0 or self.breaker_reset_s < 0:
            raise ValueError("breaker parameters must be non-negative")
        if self.hedge_delay_s < 0:
            raise ValueError("hedge_delay_s must be non-negative")
        if self.slo_latency_s <= 0:
            raise ValueError("slo_latency_s must be positive")

    @classmethod
    def disabled(cls) -> "ResiliencePolicy":
        """The no-op policy: calls pass straight through."""
        return cls(enabled=False)

    def as_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ResiliencePolicy":
        return cls(**payload)  # type: ignore[arg-type]


#: Shared default used by RunConfig (immutable, safe to share).
DISABLED_POLICY = ResiliencePolicy.disabled()


@dataclass
class ResilienceStats:
    """Counters a :class:`ServiceClient` accumulates."""

    requests: int = 0
    successes: int = 0
    failures: int = 0
    attempts: int = 0
    retries: int = 0
    timeouts: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    breaker_rejections: int = 0
    net_drops: int = 0
    unavailable: int = 0

    def reset(self) -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)

    def retry_amplification(self) -> float:
        """Attempts issued per request (1.0 = no amplification)."""
        if self.requests == 0:
            return 1.0
        return self.attempts / self.requests

    def error_rate(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.failures / self.requests

    def as_extra(self) -> Dict[str, float]:
        """Flatten into ``resilience_*`` keys for ``WorkloadResult.extra``."""
        return {
            f"resilience_{name}": float(getattr(self, name))
            for name in self.__dataclass_fields__
        }


class CircuitBreaker:
    """Classic closed → open → half-open breaker on consecutive failures.

    After ``failure_threshold`` consecutive failures the breaker opens
    and rejects calls for ``reset_s`` simulated seconds; the first call
    after that window is a half-open probe — success closes the
    breaker, failure re-opens it for another window.  A threshold of 0
    disables the breaker entirely.
    """

    def __init__(self, env: Environment, failure_threshold: int, reset_s: float) -> None:
        self.env = env
        self.failure_threshold = failure_threshold
        self.reset_s = reset_s
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self._probing = False
        self.times_opened = 0

    @property
    def state(self) -> str:
        if self.opened_at is None:
            return "closed"
        if self.env.now - self.opened_at >= self.reset_s:
            return "half_open"
        return "open"

    def allow(self) -> bool:
        """May a call proceed right now?"""
        if self.failure_threshold <= 0:
            return True
        state = self.state
        if state == "closed":
            return True
        if state == "half_open" and not self._probing:
            self._probing = True  # one probe at a time
            return True
        return False

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        self._probing = False
        if (
            self.failure_threshold > 0
            and self.consecutive_failures >= self.failure_threshold
        ):
            if self.opened_at is None:
                self.times_opened += 1
            self.opened_at = self.env.now


#: A unit of client work: a zero-argument generator factory.
Work = Callable[[], Generator]


class ServiceClient:
    """Deadline + retry + breaker + hedging around simulated work.

    ``call`` is a generator (use ``yield from`` inside a sim process);
    it returns normally on success and raises a
    :class:`~repro.faults.errors.FaultError` subclass on final failure,
    which load generators record as request errors.
    """

    def __init__(
        self,
        env: Environment,
        policy: ResiliencePolicy,
        rng: random.Random,
        injector: Optional[FaultInjector] = None,
        stats: Optional[ResilienceStats] = None,
    ) -> None:
        self.env = env
        self.policy = policy
        self.rng = rng
        self.injector = injector
        self.stats = stats or ResilienceStats()
        self.breaker = CircuitBreaker(
            env, policy.breaker_failure_threshold, policy.breaker_reset_s
        )

    # -- public API ------------------------------------------------------------
    def call(self, work: Work) -> Generator:
        """Run ``work`` under the full resilience pipeline (generator)."""
        policy = self.policy
        stats = self.stats
        stats.requests += 1
        attempt_index = 0
        last_error: BaseException = FaultError("no attempt made")
        while True:
            if not self.breaker.allow():
                stats.breaker_rejections += 1
                stats.failures += 1
                raise CircuitOpenError("circuit breaker is open")
            try:
                yield from self._attempt(work)
            except FaultError as exc:
                last_error = exc
                self.breaker.record_failure()
                self._classify(exc)
            else:
                self.breaker.record_success()
                stats.successes += 1
                return
            if attempt_index >= policy.max_retries:
                stats.failures += 1
                raise RetriesExhaustedError(attempt_index + 1, last_error)
            attempt_index += 1
            stats.retries += 1
            backoff = policy.backoff_base_s * (
                policy.backoff_multiplier ** (attempt_index - 1)
            )
            backoff *= 1.0 + policy.jitter_frac * self.rng.random()
            if backoff > 0:
                yield self.env.sleep(backoff)

    # -- internals -------------------------------------------------------------
    def _classify(self, exc: FaultError) -> None:
        stats = self.stats
        if isinstance(exc, DeadlineExceededError):
            stats.timeouts += 1
        elif isinstance(exc, NetworkLossError):
            stats.net_drops += 1
        elif isinstance(exc, ServerUnavailableError):
            stats.unavailable += 1

    def _attempt_once(self, work: Work) -> Generator:
        """One network round trip plus the service work itself."""
        injector = self.injector
        if injector is not None:
            delay = injector.net_delay_s
            if delay > 0:
                yield self.env.sleep(delay)
            if injector.drops_attempt():
                raise NetworkLossError("request dropped by network fault")
        yield from work()

    def _attempt(self, work: Work) -> Generator:
        """One attempt: primary, optional hedge, optional deadline.

        Raises :class:`DeadlineExceededError` on timeout and re-raises
        the primary's failure otherwise.  Losing/abandoned attempt
        processes are interrupted; work already queued on server thread
        pools keeps running to completion — exactly the wasted work a
        real server performs for an abandoned request.
        """
        env = self.env
        policy = self.policy
        self.stats.attempts += 1
        primary = env.process(self._attempt_once(work))
        contenders = [primary]
        deadline = (
            env.timeout(policy.deadline_s, "deadline")
            if policy.deadline_s > 0
            else None
        )
        hedge_after = policy.hedge_delay_s
        use_hedge = 0 < hedge_after and (
            deadline is None or hedge_after < policy.deadline_s
        )
        try:
            if use_hedge:
                races = [primary, env.timeout(hedge_after, "hedge")]
                if deadline is not None:
                    races.append(deadline)
                index, _ = yield any_of(env, races)
                if index == 0:
                    return  # primary finished before the hedge fired
                if index == 2:
                    raise DeadlineExceededError(
                        f"deadline of {policy.deadline_s}s exceeded"
                    )
                # Hedge timer fired: launch the backup request.
                self.stats.hedges += 1
                self.stats.attempts += 1
                secondary = env.process(self._attempt_once(work))
                contenders.append(secondary)
                races = [primary, secondary]
                if deadline is not None:
                    races.append(deadline)
                try:
                    index, _ = yield any_of(env, races)
                except FaultError:
                    # One branch died; the attempt survives as long as
                    # the other is still running (hedging tolerates a
                    # single branch failure).
                    survivor = next(
                        (p for p in (primary, secondary) if p.is_alive), None
                    )
                    if survivor is None:
                        raise
                    races = [survivor]
                    if deadline is not None:
                        races.append(deadline)
                    index, _ = yield any_of(env, races)
                    if index == 1:
                        raise DeadlineExceededError(
                            f"deadline of {policy.deadline_s}s exceeded"
                        )
                    if survivor is secondary:
                        self.stats.hedge_wins += 1
                    return
                if index == 2:
                    raise DeadlineExceededError(
                        f"deadline of {policy.deadline_s}s exceeded"
                    )
                if index == 1:
                    self.stats.hedge_wins += 1
                return
            if deadline is not None:
                index, _ = yield any_of(env, [primary, deadline])
                if index == 1:
                    raise DeadlineExceededError(
                        f"deadline of {policy.deadline_s}s exceeded"
                    )
                return
            yield primary
        finally:
            for proc in contenders:
                self._abandon(proc)

    @staticmethod
    def _abandon(proc: Process) -> None:
        if proc.is_alive:
            proc.interrupt("abandoned")
