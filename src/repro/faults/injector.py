"""Seed-scheduled fault injection as first-class simulation events.

The :class:`FaultInjector` turns a :class:`~repro.faults.schedule.FaultSchedule`
into ordinary engine events: each fault becomes a process that sleeps
until its onset, applies its effect, sleeps for its duration, and
reverts it.  Because the engine is deterministic and every stochastic
choice (network loss) draws from a named RNG stream, the same seed and
schedule replay byte-identically — serial or parallel, today or next
month.

Effects fall into three channels:

* **CPU channel** — ``server_slowdown``, ``freq_throttle``,
  ``mem_pressure``, and ``cache_flush`` all resolve to a multiplicative
  slowdown on the :class:`~repro.oskernel.scheduler.CpuScheduler`
  (frequency throttling additionally lowers the scheduler's clock so
  per-dispatch kernel overhead grows, exactly as it does on real
  down-clocked cores, via the ``repro.hw`` frequency parameters).
* **Availability channel** — ``server_crash`` marks the scheduler
  offline; new dispatches raise
  :class:`~repro.faults.errors.ServerUnavailableError` until restart.
  In-flight bursts complete — a crash-restart drains, it does not
  corrupt.
* **Network channel** — ``net_latency`` and ``net_loss`` publish the
  current extra delay and drop probability; the
  :class:`~repro.faults.resilience.ServiceClient` consults them on
  every attempt.
* **Device channel** — ``disk_degraded`` publishes a multiplicative
  slowdown to every :class:`~repro.hw.blockdev.BlockDevice` registered
  via :meth:`FaultInjector.attach_device` (mirroring the CPU channel's
  ``fault_slowdown``).  Workloads without devices attach nothing and
  the fault is a no-op, so one scenario is meaningful suite-wide.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.faults.schedule import FaultSchedule, FaultSpec
from repro.sim.engine import Environment

#: Frequency throttling never clocks below this fraction of the
#: pre-fault effective frequency (hardware has a minimum P-state).
MIN_FREQ_FRACTION = 0.25


class FaultInjector:
    """Replays a fault schedule against one simulated server.

    ``scheduler`` must expose ``fault_slowdown`` (float multiplier),
    ``offline`` (bool), and ``freq_ghz`` — the surface
    :class:`~repro.oskernel.scheduler.CpuScheduler` provides.
    ``memory_intensity`` scales ``mem_pressure``/``cache_flush``
    severity (memory-bound workloads hurt more); pass the workload's
    memory-boundness in [0, 1].
    """

    def __init__(
        self,
        env: Environment,
        schedule: FaultSchedule,
        scheduler,
        rng: random.Random,
        window_start: float,
        window_seconds: float,
        memory_intensity: float = 0.5,
    ) -> None:
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        self.env = env
        self.schedule = schedule
        self.scheduler = scheduler
        self.rng = rng
        self.window_start = window_start
        self.window_seconds = window_seconds
        self.memory_intensity = max(0.0, min(1.0, memory_intensity))
        #: Published network fault state, read by ServiceClient.
        self.net_delay_s = 0.0
        self.net_loss_p = 0.0
        #: (sim time, kind, phase) audit trail; phase is apply/revert.
        self.log: List[Tuple[float, str, str]] = []
        self._slowdowns: Dict[object, float] = {}
        self._throttles: Dict[int, float] = {}
        self._disk_faults: Dict[int, float] = {}
        self._devices: List[object] = []
        self._crashes = 0
        self._baseline_freq_ghz: Optional[float] = None
        self._started = False

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> None:
        """Schedule every fault as a simulation process (idempotent)."""
        if self._started:
            return
        self._started = True
        for index, fault in enumerate(self.schedule.sorted_by_start()):
            self.env.process(self._drive(index, fault))

    def _drive(self, index: int, fault: FaultSpec):
        start = self.window_start + fault.start_frac * self.window_seconds
        duration = fault.duration_frac * self.window_seconds
        delay = start - self.env.now
        if delay > 0:
            yield self.env.sleep(delay)
        self._apply(index, fault)
        yield self.env.sleep(duration)
        self._revert(index, fault)

    # -- effect application ----------------------------------------------------
    def _apply(self, index: int, fault: FaultSpec) -> None:
        kind = fault.kind
        if kind == "server_slowdown":
            self._set_slowdown(index, fault.magnitude)
        elif kind == "freq_throttle":
            self._apply_throttle(index, fault.magnitude)
        elif kind == "mem_pressure":
            self._set_slowdown(
                index, 1.0 + fault.magnitude * (0.5 + self.memory_intensity)
            )
        elif kind == "cache_flush":
            self._set_slowdown(
                index, 1.0 + fault.magnitude * (0.25 + 0.75 * self.memory_intensity)
            )
        elif kind == "server_crash":
            self._crashes += 1
            self.scheduler.offline = True
        elif kind == "net_latency":
            self.net_delay_s += fault.magnitude
        elif kind == "net_loss":
            self.net_loss_p = min(0.999, self.net_loss_p + fault.magnitude)
        elif kind == "disk_degraded":
            self._disk_faults[index] = fault.magnitude
            self._publish_disk_slowdown()
        self.log.append((self.env.now, kind, "apply"))

    def _revert(self, index: int, fault: FaultSpec) -> None:
        kind = fault.kind
        if kind in ("server_slowdown", "mem_pressure", "cache_flush"):
            self._clear_slowdown(index)
        elif kind == "freq_throttle":
            self._revert_throttle(index)
        elif kind == "server_crash":
            self._crashes -= 1
            if self._crashes == 0:
                self.scheduler.offline = False
        elif kind == "net_latency":
            self.net_delay_s = max(0.0, self.net_delay_s - fault.magnitude)
        elif kind == "net_loss":
            self.net_loss_p = max(0.0, self.net_loss_p - fault.magnitude)
        elif kind == "disk_degraded":
            self._disk_faults.pop(index, None)
            self._publish_disk_slowdown()
        self.log.append((self.env.now, kind, "revert"))

    # -- CPU channel helpers ---------------------------------------------------
    def _set_slowdown(self, index: int, factor: float) -> None:
        self._slowdowns[index] = factor
        self._publish_slowdown()

    def _clear_slowdown(self, index: int) -> None:
        self._slowdowns.pop(index, None)
        self._publish_slowdown()

    def _publish_slowdown(self) -> None:
        product = 1.0
        for factor in self._slowdowns.values():
            product *= factor
        self.scheduler.fault_slowdown = product

    def _apply_throttle(self, index: int, magnitude: float) -> None:
        if self._baseline_freq_ghz is None:
            self._baseline_freq_ghz = self.scheduler.freq_ghz
        self._throttles[index] = magnitude
        self._publish_throttle()

    def _revert_throttle(self, index: int) -> None:
        self._throttles.pop(index, None)
        self._publish_throttle()

    def _publish_throttle(self) -> None:
        """Recompute the clock from every active throttle.

        Overlapping throttles compound multiplicatively; the clock
        floors at the minimum P-state.  Lowering the clock both grows
        per-dispatch kernel overhead (it is cycle-priced) and slows
        every burst by the frequency ratio.
        """
        baseline = self._baseline_freq_ghz
        if baseline is None:
            return
        keep = 1.0
        for magnitude in self._throttles.values():
            keep *= 1.0 - magnitude
        throttled = max(MIN_FREQ_FRACTION * baseline, baseline * keep)
        self.scheduler.freq_ghz = throttled
        if throttled < baseline:
            self._set_slowdown("freq_throttle", baseline / throttled)
        else:
            self._clear_slowdown("freq_throttle")

    # -- device channel --------------------------------------------------------
    def attach_device(self, device) -> None:
        """Register a block device for ``disk_degraded`` publication.

        ``device`` must expose ``fault_slowdown`` (the
        :class:`~repro.hw.blockdev.BlockDevice` surface).  Late
        attachment — a workload building its device after the injector
        started — immediately picks up any active disk faults.
        """
        self._devices.append(device)
        device.fault_slowdown = self._disk_product()

    def _disk_product(self) -> float:
        product = 1.0
        for factor in self._disk_faults.values():
            product *= factor
        return product

    def _publish_disk_slowdown(self) -> None:
        product = self._disk_product()
        for device in self._devices:
            device.fault_slowdown = product

    # -- network channel -------------------------------------------------------
    def drops_attempt(self) -> bool:
        """Deterministically decide whether this attempt is lost."""
        return self.net_loss_p > 0.0 and self.rng.random() < self.net_loss_p

    @property
    def events_applied(self) -> int:
        """Number of apply-phase log entries so far."""
        return sum(1 for _, _, phase in self.log if phase == "apply")
