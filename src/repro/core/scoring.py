"""Score normalization and suite aggregation.

DCPerf reports a per-benchmark normalized score — the machine's
application metric divided by a known baseline machine's — and an
overall score that is the geometric mean of the benchmark scores
(Section 3.1).  SKU1 is the baseline, matching Figure 2 ("the
projection errors are 0% for SKU1 because it is used as the baseline
for calibration").
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional

BASELINE_SKU = "SKU1"


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; raises on empty input or non-positive values."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError(f"geometric mean requires positive values, got {values}")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def weighted_geometric_mean(
    values: Dict[str, float], weights: Dict[str, float]
) -> float:
    """Geomean with per-key weights (power-weighted production score)."""
    if not values:
        raise ValueError("weighted geometric mean of empty mapping")
    total_weight = sum(weights.get(k, 1.0) for k in values)
    if total_weight <= 0:
        raise ValueError("weights must sum to a positive value")
    acc = 0.0
    for key, value in values.items():
        if value <= 0:
            raise ValueError(f"non-positive value for {key}: {value}")
        acc += weights.get(key, 1.0) * math.log(value)
    return math.exp(acc / total_weight)


class ScoreBoard:
    """Caches baseline metrics and normalizes scores against them.

    Baselines are registered once per (workload, metric); scores are
    metric / baseline.  The suite runner registers SKU1 results as
    baselines before scoring other SKUs.
    """

    def __init__(self, baseline_sku: str = BASELINE_SKU) -> None:
        self.baseline_sku = baseline_sku
        self._baselines: Dict[str, float] = {}

    def register_baseline(self, workload: str, metric: float) -> None:
        if metric <= 0:
            raise ValueError(f"baseline for {workload!r} must be positive")
        self._baselines[workload] = metric

    def has_baseline(self, workload: str) -> bool:
        return workload in self._baselines

    def baseline(self, workload: str) -> float:
        try:
            return self._baselines[workload]
        except KeyError:
            raise KeyError(
                f"no baseline registered for {workload!r}; run the suite on "
                f"{self.baseline_sku} first"
            ) from None

    def score(self, workload: str, metric: float) -> float:
        """Normalized score: metric relative to the baseline machine."""
        if metric <= 0:
            raise ValueError(f"metric for {workload!r} must be positive")
        return metric / self.baseline(workload)

    def suite_score(self, scores: Dict[str, float], weights: Optional[Dict[str, float]] = None) -> float:
        """Overall score: (weighted) geometric mean of benchmark scores."""
        if weights:
            return weighted_geometric_mean(scores, weights)
        return geometric_mean(scores.values())
