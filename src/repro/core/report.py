"""Result reporting: system info capture and JSON persistence.

After a run finishes, DCPerf reports the benchmark parameters and
results, along with key information about the system being tested
(Section 3.1).  Results are stored in JSON so automation can process
them further.
"""

from __future__ import annotations

import json
import os
import platform
from typing import Dict, List

from repro.workloads.base import RunConfig


def system_info(config: RunConfig) -> Dict[str, object]:
    """Key information about the (simulated) system under test."""
    sku = config.sku
    return {
        "sku": sku.name,
        "description": sku.description,
        "cpu_model": sku.cpu.name,
        "arch": sku.cpu.arch,
        "logical_cores": sku.logical_cores,
        "physical_cores": sku.cpu.physical_cores,
        "smt": sku.cpu.smt,
        "memory_gb": sku.memory.capacity_gb,
        "memory_peak_bw_gbps": sku.memory.peak_bw_gbps,
        "network_gbps": sku.network_gbps,
        "storage": sku.storage,
        "kernel_version": config.kernel_version,
        "designed_power_w": sku.designed_power_w,
        # Shard count of the run this system served: N for both the
        # merged parent report and each shard sub-report (they describe
        # the same fleet), 1 for unsharded runs.
        "shards": config.shards,
        "harness_python": platform.python_version(),
    }


def write_json_report(report_dict: Dict[str, object], path: str) -> str:
    """Persist one report as JSON; returns the path written."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(report_dict, fh, indent=2, sort_keys=True, default=str)
    return path


def load_json_report(path: str) -> Dict[str, object]:
    """Read a report back (for post-analysis tooling)."""
    with open(path) as fh:
        return json.load(fh)


def format_table(headers: List[str], rows: List[List[object]]) -> str:
    """Plain-text table formatting used by the CLI and bench output."""
    columns = [[str(h)] for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            if isinstance(cell, float):
                columns[i].append(f"{cell:.3g}")
            else:
                columns[i].append(str(cell))
    widths = [max(len(cell) for cell in col) for col in columns]
    lines = []
    for r in range(len(rows) + 1):
        line = "  ".join(columns[c][r].ljust(widths[c]) for c in range(len(headers)))
        lines.append(line.rstrip())
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
