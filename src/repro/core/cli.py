"""Command-line interface: the clone/build/run workflow of Section 2.1.

Usage examples::

    dcperf list
    dcperf install -b taobench
    dcperf run -b taobench --sku SKU2 --kernel 6.9 --json out.json
    dcperf suite --sku SKU4
    dcperf microbench
    dcperf skus
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core.benchmark import Benchmark
from repro.core.report import format_table, write_json_report
from repro.core.suite import DCPerfSuite
from repro.hw.sku import list_skus
from repro.workloads.base import RunConfig
from repro.workloads.registry import dcperf_benchmarks, extension_benchmarks


def _cmd_list(_args: argparse.Namespace) -> int:
    rows = []
    for name in dcperf_benchmarks() + extension_benchmarks():
        bench = Benchmark.by_name(name)
        desc = bench.workload.describe()
        suite = "extension" if name in extension_benchmarks() else "dcperf"
        rows.append(
            [
                name,
                suite,
                desc["category"],
                desc["metric"],
                f"{desc['tax_fraction']:.0%}",
            ]
        )
    print(
        format_table(["benchmark", "suite", "category", "metric", "tax share"], rows)
    )
    return 0


def _cmd_skus(_args: argparse.Namespace) -> int:
    rows = [
        [
            sku.name,
            sku.logical_cores,
            sku.memory.capacity_gb,
            sku.network_gbps,
            sku.storage,
            sku.year,
            sku.designed_power_w,
        ]
        for sku in list_skus()
    ]
    print(
        format_table(
            ["sku", "logical cores", "ram GB", "net Gbps", "storage", "year", "power W"],
            rows,
        )
    )
    return 0


def _cmd_install(args: argparse.Namespace) -> int:
    bench = Benchmark.by_name(args.benchmark)
    description = bench.install()
    print(json.dumps(description, indent=2, default=str))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    bench = Benchmark.by_name(args.benchmark)
    config = RunConfig(
        sku_name=args.sku,
        kernel_version=args.kernel,
        seed=args.seed,
        measure_seconds=args.measure_seconds,
    )
    report = bench.run(config)
    payload = report.as_dict()
    if args.json:
        path = write_json_report(payload, args.json)
        print(f"report written to {path}")
    else:
        print(json.dumps(payload, indent=2, default=str))
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    suite = DCPerfSuite(measure_seconds=args.measure_seconds)
    report = suite.run(args.sku, kernel=args.kernel, seed=args.seed)
    rows = [
        [name, f"{report.reports[name].metric_value:.4g}", f"{score:.3f}"]
        for name, score in report.scores.items()
    ]
    print(format_table(["benchmark", "metric", "score vs SKU1"], rows))
    print(f"\noverall score (geomean): {report.overall_score:.3f}")
    if args.json:
        path = write_json_report(report.as_dict(), args.json)
        print(f"report written to {path}")
    return 0


def _cmd_microbench(_args: argparse.Namespace) -> int:
    from repro.dctax.microbench import run_all

    rows = [
        [name, result.operations, f"{result.ops_per_second:.4g}"]
        for name, result in run_all().items()
    ]
    print(format_table(["microbenchmark", "ops", "ops/s"], rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dcperf",
        description="DCPerf reproduction: datacenter benchmarks on a simulated substrate",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available benchmarks").set_defaults(
        func=_cmd_list
    )
    sub.add_parser("skus", help="list modeled server SKUs").set_defaults(
        func=_cmd_skus
    )

    p_install = sub.add_parser("install", help="prepare one benchmark")
    p_install.add_argument("-b", "--benchmark", required=True)
    p_install.set_defaults(func=_cmd_install)

    p_run = sub.add_parser("run", help="run one benchmark")
    p_run.add_argument("-b", "--benchmark", required=True)
    p_run.add_argument("--sku", default="SKU2")
    p_run.add_argument("--kernel", default="6.9", choices=["6.4", "6.9"])
    p_run.add_argument("--seed", type=int, default=7)
    p_run.add_argument("--measure-seconds", type=float, default=2.0)
    p_run.add_argument("--json", help="write the report to this JSON file")
    p_run.set_defaults(func=_cmd_run)

    p_suite = sub.add_parser("suite", help="run the whole suite and score it")
    p_suite.add_argument("--sku", default="SKU2")
    p_suite.add_argument("--kernel", default="6.9", choices=["6.4", "6.9"])
    p_suite.add_argument("--seed", type=int, default=7)
    p_suite.add_argument("--measure-seconds", type=float, default=1.5)
    p_suite.add_argument("--json", help="write the report to this JSON file")
    p_suite.set_defaults(func=_cmd_suite)

    sub.add_parser(
        "microbench", help="run the datacenter-tax microbenchmarks"
    ).set_defaults(func=_cmd_microbench)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
