"""Command-line interface: the clone/build/run workflow of Section 2.1.

Usage examples::

    dcperf list
    dcperf workloads list
    dcperf install -b taobench
    dcperf run -b taobench --sku SKU2 --kernel 6.9 --json out.json
    dcperf run -b llmbench --catalog chat
    dcperf suite --sku SKU4
    dcperf suite --skus SKU1,SKU2,SKU3,SKU4 --parallel 4
    dcperf cache info
    dcperf cache clear
    dcperf microbench
    dcperf skus
    dcperf faults list
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.core.benchmark import Benchmark
from repro.core.report import format_table, write_json_report
from repro.core.suite import DCPerfSuite
from repro.exec.cache import RunCache, cache_from_env
from repro.exec.executor import SweepExecutor
from repro.hw.sku import list_skus
from repro.llm.catalog import mix_names as llm_mix_names
from repro.workloads.base import RunConfig
from repro.workloads.registry import (
    dcperf_benchmarks,
    extension_benchmarks,
    llm_serving_benchmarks,
    workload_names,
)
from repro.workloads.scenarios import (
    FAULT_SCENARIOS,
    apply_fault_scenario,
    fault_scenario_names,
    get_fault_scenario,
)


def _cmd_list(_args: argparse.Namespace) -> int:
    rows = []
    for name in dcperf_benchmarks() + extension_benchmarks():
        bench = Benchmark.by_name(name)
        desc = bench.workload.describe()
        suite = "extension" if name in extension_benchmarks() else "dcperf"
        rows.append(
            [
                name,
                suite,
                desc["category"],
                desc["metric"],
                f"{desc['tax_fraction']:.0%}",
            ]
        )
    print(
        format_table(["benchmark", "suite", "category", "metric", "tax share"], rows)
    )
    return 0


def _cmd_skus(_args: argparse.Namespace) -> int:
    rows = [
        [
            sku.name,
            sku.logical_cores,
            sku.memory.capacity_gb,
            sku.network_gbps,
            sku.storage,
            sku.year,
            sku.designed_power_w,
        ]
        for sku in list_skus()
    ]
    print(
        format_table(
            ["sku", "logical cores", "ram GB", "net Gbps", "storage", "year", "power W"],
            rows,
        )
    )
    return 0


def _cmd_install(args: argparse.Namespace) -> int:
    bench = Benchmark.by_name(args.benchmark)
    description = bench.install()
    print(json.dumps(description, indent=2, default=str))
    return 0


def _cmd_workloads(_args: argparse.Namespace) -> int:
    scored = set(dcperf_benchmarks()) | set(llm_serving_benchmarks())
    rows = []
    for name in workload_names():
        bench = Benchmark.by_name(name)
        desc = bench.workload.describe()
        rows.append(
            [
                name,
                desc["category"],
                "scored" if name in scored else "unscored",
                desc["metric"],
            ]
        )
    print(format_table(["workload", "category", "suite", "metric"], rows))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.shards < 1:
        print("--shards must be >= 1", file=sys.stderr)
        return 2
    if args.catalog:
        if args.benchmark.split("-")[0] != "llmbench":
            print("--catalog only applies to llmbench", file=sys.stderr)
            return 2
        args.benchmark = f"llmbench-{args.catalog}"
    if args.shards > 1:
        # Sharded runs execute through the sweep machinery: the point
        # expands into shard sub-points (run on the warm pool, one
        # worker per shard) and the shard reports merge into one.
        from repro.exec.spec import RunPoint

        point = RunPoint(
            benchmark=args.benchmark,
            sku=args.sku,
            kernel=args.kernel,
            seed=args.seed,
            measure_seconds=args.measure_seconds,
            faults=args.faults or "",
            early_stop=not args.no_early_stop,
            shards=args.shards,
        )
        executor = SweepExecutor(max_workers=args.shards)
        report = executor.run([point])[0]
    else:
        bench = Benchmark.by_name(args.benchmark)
        config = RunConfig(
            sku_name=args.sku,
            kernel_version=args.kernel,
            seed=args.seed,
            measure_seconds=args.measure_seconds,
            early_stop=not args.no_early_stop,
        )
        if args.faults:
            config = apply_fault_scenario(config, args.faults)
        report = bench.run(config)
    payload = report.as_dict()
    if args.json:
        path = write_json_report(payload, args.json)
        print(f"report written to {path}")
    else:
        print(json.dumps(payload, indent=2, default=str))
    return 0


def _suite_executor(args: argparse.Namespace) -> SweepExecutor:
    if args.no_cache:
        cache = None
        use_cache = False
    elif args.cache_dir:
        cache = RunCache(args.cache_dir)
        use_cache = True
    else:
        cache = None
        use_cache = True
    return SweepExecutor(
        max_workers=args.parallel,
        cache=cache,
        use_cache=use_cache,
        warm_pool=args.warm_pool,
        schedule=args.schedule,
        auto_shard=args.auto_shard,
    )


def _cmd_suite(args: argparse.Namespace) -> int:
    skus = (
        [s.strip() for s in args.skus.split(",") if s.strip()]
        if args.skus
        else [args.sku]
    )
    if not skus:
        print("no SKUs given", file=sys.stderr)
        return 2
    suite = DCPerfSuite(
        measure_seconds=args.measure_seconds,
        executor=_suite_executor(args),
        faults=args.faults or "",
        early_stop=not args.no_early_stop,
    )
    if args.faults:
        scenario = get_fault_scenario(args.faults)
        print(f"fault scenario: {scenario.name} — {scenario.description}")
    on_point = None
    if args.progress:
        executor = suite.executor

        def on_point(point, report):  # noqa: F811 - deliberate rebind
            prog = executor.progress() or {}
            done = prog.get("done", "?")
            total = prog.get("total", "?")
            eta = prog.get("eta_seconds")
            # The ETA comes from the runtime cost ledger; while the
            # ledger is cold the line keeps plain counts instead of
            # inventing a number.
            suffix = f"  (eta {eta:.0f}s)" if eta is not None else ""
            print(
                f"  [{done}/{total}] {point.workload_name} on {point.sku}: "
                f"{report.metric_value:.4g}{suffix}",
                file=sys.stderr,
            )

    reports = suite.run_many(
        skus, kernel=args.kernel, seed=args.seed, on_point=on_point
    )
    for sku, report in reports.items():
        if len(reports) > 1:
            print(f"\n== {sku} ==")
        if args.faults:
            rows = []
            for name, score in report.scores.items():
                bench_report = report.reports[name]
                resilience = bench_report.hook_sections.get("resilience", {})
                p95 = bench_report.result.latency.get("p95", 0.0)
                rows.append(
                    [
                        name,
                        f"{bench_report.metric_value:.4g}",
                        f"{score:.3f}",
                        f"{p95 * 1000.0:.1f}",
                        f"{resilience.get('slo_compliance_pct', 100.0):.1f}",
                        f"{resilience.get('error_rate', 0.0):.3f}",
                    ]
                )
            print(
                format_table(
                    [
                        "benchmark",
                        "metric",
                        "score vs SKU1",
                        "p95 ms",
                        "SLO %",
                        "err rate",
                    ],
                    rows,
                )
            )
        else:
            rows = [
                [
                    name,
                    f"{report.reports[name].metric_value:.4g}",
                    f"{score:.3f}",
                ]
                for name, score in report.scores.items()
            ]
            print(format_table(["benchmark", "metric", "score vs SKU1"], rows))
        print(f"\noverall score (geomean): {report.overall_score:.3f}")
    stats = suite.executor.last_stats
    if stats is not None:
        print(
            f"\nsweep: {stats.unique_points} unique runs, "
            f"{stats.cache_hits} cache hits, {stats.executed} executed "
            f"on {stats.workers} worker(s) [{stats.pool_mode}] "
            f"in {stats.elapsed_seconds:.1f}s"
        )
        if stats.pool_mode == "warm":
            print(
                f"warm pool: {stats.spawned} spawned, {stats.reused} reused, "
                f"{stats.respawned} respawned, {stats.steals} stolen, "
                f"{stats.bytes_shipped / 1024:.1f} KiB shipped"
            )
        if stats.auto_sharded:
            expanded = ", ".join(
                f"{row['workload']}→{row['shards']}"
                for row in stats.auto_shard_plan
            )
            print(f"auto-shard plan: {expanded}")
    if args.json:
        payload: Dict[str, object]
        if len(reports) == 1:
            payload = next(iter(reports.values())).as_dict()
        else:
            payload = {sku: rep.as_dict() for sku, rep in reports.items()}
        path = write_json_report(payload, args.json)
        print(f"report written to {path}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.exec.schedule import CostLedger

    cache = RunCache(args.cache_dir) if args.cache_dir else cache_from_env()
    if cache is None:
        cache = RunCache()
    ledger = CostLedger(cache.directory)
    if args.cache_command == "clear":
        removed = cache.clear(stale_only=args.stale)
        what = "stale cached run(s)" if args.stale else "cached run(s)"
        print(f"removed {removed} {what} from {cache.directory}")
        # A full clear drops the runtime cost ledger too (the history
        # belonged to the runs just removed) unless asked to keep it;
        # a stale-only clear keeps it — current runs still match it.
        if not args.stale:
            if args.keep_costs:
                print("kept the runtime cost ledger (--keep-costs)")
            elif ledger.clear():
                print("removed the runtime cost ledger")
        return 0
    from repro.exec.spec import CACHE_SCHEMA_VERSION

    info = cache.info()
    print(f"directory: {info.directory}")
    print(f"entries:   {info.entries}")
    print(f"size:      {info.total_bytes / 1024:.1f} KiB")
    for schema in sorted(info.by_schema):
        marker = (
            " (current)" if schema == str(CACHE_SCHEMA_VERSION) else ""
        )
        print(f"  schema {schema}: {info.by_schema[schema]}{marker}")
    if args.costs:
        print(f"cost ledger: {ledger.entries()} recorded fingerprint(s)")
        summary = ledger.workload_summary()
        if summary:
            rows = [
                [
                    workload,
                    int(row["count"]),
                    f"{row['mean_s'] * 1000.0:.0f}",
                    f"{row['max_s'] * 1000.0:.0f}",
                ]
                for workload, row in sorted(summary.items())
            ]
            print(
                format_table(
                    ["workload", "runs", "mean ms", "max ms"], rows
                )
            )
        else:
            print("  (ledger is cold: no recorded runtimes yet)")
    return 0


def _cmd_faults(_args: argparse.Namespace) -> int:
    rows = []
    for name in fault_scenario_names():
        scenario = FAULT_SCENARIOS[name]
        control = "yes" if scenario.control.enabled else "-"
        load = (
            f"{scenario.load_multiplier:g}x"
            if scenario.load_multiplier != 1.0
            else "-"
        )
        rows.append([name, control, load, scenario.description])
    print(format_table(["scenario", "slo control", "load", "description"], rows))
    return 0


def _cmd_microbench(_args: argparse.Namespace) -> int:
    from repro.dctax.microbench import run_all

    rows = [
        [name, result.operations, f"{result.ops_per_second:.4g}"]
        for name, result in run_all().items()
    ]
    print(format_table(["microbenchmark", "ops", "ops/s"], rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dcperf",
        description="DCPerf reproduction: datacenter benchmarks on a simulated substrate",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available benchmarks").set_defaults(
        func=_cmd_list
    )
    sub.add_parser("skus", help="list modeled server SKUs").set_defaults(
        func=_cmd_skus
    )

    p_install = sub.add_parser("install", help="prepare one benchmark")
    p_install.add_argument("-b", "--benchmark", required=True)
    p_install.set_defaults(func=_cmd_install)

    p_run = sub.add_parser("run", help="run one benchmark")
    p_run.add_argument("-b", "--benchmark", required=True)
    p_run.add_argument(
        "--catalog",
        choices=llm_mix_names(),
        help="llmbench only: run this serving mix from the scenario "
        "catalog (shorthand for -b llmbench-<mix>)",
    )
    p_run.add_argument("--sku", default="SKU2")
    p_run.add_argument("--kernel", default="6.9", choices=["6.4", "6.9"])
    p_run.add_argument("--seed", type=int, default=7)
    p_run.add_argument("--measure-seconds", type=float, default=2.0)
    p_run.add_argument(
        "--faults",
        choices=fault_scenario_names(),
        help="inject a named fault scenario during the run",
    )
    p_run.add_argument(
        "--no-early-stop",
        action="store_true",
        help="always measure the full window instead of stopping once "
        "latency windows converge (slower, byte-stable reports)",
    )
    p_run.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="split the run across N shard environments executed on "
        "the warm worker pool and merge their results into one report "
        "(1 = ordinary single-environment run)",
    )
    p_run.add_argument("--json", help="write the report to this JSON file")
    p_run.set_defaults(func=_cmd_run)

    p_suite = sub.add_parser("suite", help="run the whole suite and score it")
    p_suite.add_argument("--sku", default="SKU2")
    p_suite.add_argument(
        "--skus",
        help="comma-separated SKU list; one sweep scores them all "
        "(overrides --sku)",
    )
    p_suite.add_argument("--kernel", default="6.9", choices=["6.4", "6.9"])
    p_suite.add_argument("--seed", type=int, default=7)
    p_suite.add_argument("--measure-seconds", type=float, default=1.5)
    p_suite.add_argument(
        "--parallel",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the sweep (1 = in-process)",
    )
    p_suite.add_argument(
        "--warm-pool",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="use the persistent warm worker pool for parallel sweeps "
        "(default: on, or DCPERF_WARM_POOL; --no-warm-pool forces a "
        "cold per-sweep pool)",
    )
    p_suite.add_argument(
        "--progress",
        action="store_true",
        help="stream each finished point to stderr as the sweep runs "
        "(done/total, plus a cost-ledger ETA once the ledger is warm)",
    )
    p_suite.add_argument(
        "--schedule",
        choices=["lpt", "fifo"],
        default=None,
        help="dispatch policy: lpt (default) runs the longest-predicted "
        "points first for minimum makespan, fifo is historical spec "
        "order; reports are byte-identical either way",
    )
    p_suite.add_argument(
        "--auto-shard",
        action="store_true",
        help="expand predicted straggler points into shards=N before "
        "dispatch (deterministic plan from the cost ledger snapshot "
        "and worker count; the plan is printed and recorded)",
    )
    p_suite.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the persistent run cache for this sweep",
    )
    p_suite.add_argument(
        "--cache-dir", help="override the run-cache directory"
    )
    p_suite.add_argument(
        "--faults",
        choices=fault_scenario_names(),
        help="run the whole suite (baseline included) under a named "
        "fault scenario; adds SLO/error columns to the output",
    )
    p_suite.add_argument(
        "--no-early-stop",
        action="store_true",
        help="always measure the full window instead of stopping once "
        "latency windows converge (slower, byte-stable reports)",
    )
    p_suite.add_argument("--json", help="write the report to this JSON file")
    p_suite.set_defaults(func=_cmd_suite)

    p_cache = sub.add_parser(
        "cache", help="inspect or clear the persistent run cache"
    )
    p_cache.add_argument(
        "cache_command", choices=["info", "clear"], help="what to do"
    )
    p_cache.add_argument(
        "--cache-dir", help="override the run-cache directory"
    )
    p_cache.add_argument(
        "--stale",
        action="store_true",
        help="with clear: drop only entries written under an older "
        "cache schema version (plus corrupt files), keeping current "
        "entries warm",
    )
    p_cache.add_argument(
        "--costs",
        action="store_true",
        help="with info: also print the runtime cost ledger (recorded "
        "fingerprints plus per-workload mean/max wall times)",
    )
    p_cache.add_argument(
        "--keep-costs",
        action="store_true",
        help="with clear: keep the runtime cost ledger (by default a "
        "full clear removes it along with the cached runs)",
    )
    p_cache.set_defaults(func=_cmd_cache)

    p_workloads = sub.add_parser(
        "workloads", help="inspect every registered workload"
    )
    p_workloads.add_argument(
        "workloads_command",
        choices=["list"],
        help="what to do",
    )
    p_workloads.set_defaults(func=_cmd_workloads)

    p_faults = sub.add_parser(
        "faults", help="inspect the named fault scenarios"
    )
    p_faults.add_argument(
        "faults_command",
        choices=["list"],
        help="what to do",
    )
    p_faults.set_defaults(func=_cmd_faults)

    sub.add_parser(
        "microbench", help="run the datacenter-tax microbenchmarks"
    ).set_defaults(func=_cmd_microbench)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
