"""Extensible monitoring hooks.

DCPerf is designed as an extensible framework through plugins called
hooks (Section 3.1): each hook observes a benchmark run and contributes
a section to the final report.  ``before_run`` runs ahead of the
benchmark, ``after_run`` receives the finished
:class:`~repro.workloads.base.WorkloadResult` and returns the hook's
report section.  Hooks must not mutate the result.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.errors import HookError
from repro.loadgen.windows import WindowSnapshot
from repro.workloads.base import RunConfig, WorkloadResult


@dataclass
class RunContext:
    """Everything hooks may observe about one benchmark run."""

    benchmark: str
    config: RunConfig
    metadata: Dict[str, object] = field(default_factory=dict)


class Hook(abc.ABC):
    """One monitoring plugin."""

    #: Unique hook name, used as the report-section key.
    name: str = "abstract"

    def before_run(self, ctx: RunContext) -> None:
        """Called before the benchmark starts (default: nothing)."""

    @abc.abstractmethod
    def after_run(self, ctx: RunContext, result: WorkloadResult) -> Dict[str, object]:
        """Produce this hook's report section from the finished run."""


class CpuUtilHook(Hook):
    """Total CPU utilization plus user/kernel breakdown (Fig. 9)."""

    name = "cpu_util"

    def after_run(self, ctx: RunContext, result: WorkloadResult) -> Dict[str, object]:
        return {
            "total_pct": result.cpu_util * 100.0,
            "sys_pct": result.kernel_util * 100.0,
            "user_pct": max(0.0, result.cpu_util - result.kernel_util) * 100.0,
        }


class MemStatHook(Hook):
    """Memory footprint estimate from the workload's data set."""

    name = "memstat"

    def after_run(self, ctx: RunContext, result: WorkloadResult) -> Dict[str, object]:
        sku = ctx.config.sku
        if result.steady is None:
            return {"capacity_gb": sku.memory.capacity_gb}
        bw = result.steady.memory_bandwidth_gbps
        return {
            "capacity_gb": sku.memory.capacity_gb,
            "bandwidth_gbps": bw,
            "bandwidth_pct_of_peak": bw / sku.memory.peak_bw_gbps * 100.0,
        }


class NetStatHook(Hook):
    """Network traffic derived from throughput x bytes/request."""

    name = "netstat"

    def after_run(self, ctx: RunContext, result: WorkloadResult) -> Dict[str, object]:
        sku = ctx.config.sku
        # The benchmark's characteristics travel with the workload via
        # the steady state; fall back to zero traffic if absent.
        if result.steady is None:
            return {"nic_gbps": sku.network_gbps}
        rps = result.throughput_rps
        bytes_per_request = ctx.metadata.get("network_bytes_per_request", 0.0)
        gbps = rps * float(bytes_per_request) * 8.0 / 1e9
        return {
            "nic_gbps": sku.network_gbps,
            "traffic_gbps": gbps,
            "nic_util_pct": min(100.0, gbps / sku.network_gbps * 100.0),
        }


class CpuFreqHook(Hook):
    """Effective core frequency (Fig. 11)."""

    name = "cpufreq"

    def after_run(self, ctx: RunContext, result: WorkloadResult) -> Dict[str, object]:
        if result.steady is None:
            raise HookError("cpufreq hook requires a steady state")
        return {
            "effective_ghz": result.steady.effective_freq_ghz,
            "base_ghz": ctx.config.sku.cpu.base_freq_ghz,
            "max_ghz": ctx.config.sku.cpu.max_freq_ghz,
        }


class PowerHook(Hook):
    """Wall power and component breakdown (Fig. 10)."""

    name = "power"

    def after_run(self, ctx: RunContext, result: WorkloadResult) -> Dict[str, object]:
        if result.steady is None:
            raise HookError("power hook requires a steady state")
        breakdown = result.steady.power.as_dict()
        return {
            "watts": result.steady.power_watts,
            "designed_watts": ctx.config.sku.designed_power_w,
            "breakdown_pct": {k: v * 100.0 for k, v in breakdown.items()},
        }


class TopdownHook(Hook):
    """TMAM slot breakdown (Fig. 4/5)."""

    name = "topdown"

    def after_run(self, ctx: RunContext, result: WorkloadResult) -> Dict[str, object]:
        if result.steady is None:
            raise HookError("topdown hook requires a steady state")
        return {k: v * 100.0 for k, v in result.steady.tmam.as_dict().items()}


class UarchHook(Hook):
    """Detailed microarchitecture metrics (Fig. 6/7/8)."""

    name = "uarch"

    def after_run(self, ctx: RunContext, result: WorkloadResult) -> Dict[str, object]:
        if result.steady is None:
            raise HookError("uarch hook requires a steady state")
        steady = result.steady
        return {
            "ipc_per_physical_core": steady.ipc_per_physical_core,
            "l1i_mpki": steady.misses.l1i_mpki,
            "l1d_mpki": steady.misses.l1d_mpki,
            "l2_mpki": steady.misses.l2_mpki,
            "llc_mpki": steady.misses.llc_mpki,
            "membw_gbps": steady.memory_bandwidth_gbps,
            "gips": steady.giga_instructions_per_second,
        }


class TimelineHook(Hook):
    """Time-series CPU utilization over the measurement window.

    The paper's hooks record time-series performance data and the
    CopyMove hook preserves it; this hook summarizes the series and
    exposes the samples for post-analysis.
    """

    name = "timeline"

    def after_run(self, ctx: RunContext, result: WorkloadResult) -> Dict[str, object]:
        samples = list(result.timeline)
        if not samples:
            return {"samples": 0}
        utils = [u for _, u in samples]
        return {
            "samples": len(samples),
            "util_min": min(utils),
            "util_max": max(utils),
            "util_mean": sum(utils) / len(utils),
            "series": [[t, u] for t, u in samples],
        }


class CopyMoveHook(Hook):
    """Preserves run artifacts (result JSON) into a per-run folder."""

    name = "copymove"

    def __init__(self, destination: Optional[str] = None) -> None:
        self.destination = destination
        self.copied: List[str] = []

    def after_run(self, ctx: RunContext, result: WorkloadResult) -> Dict[str, object]:
        import json
        import os

        if self.destination is None:
            return {"copied": []}
        os.makedirs(self.destination, exist_ok=True)
        path = os.path.join(
            self.destination, f"{ctx.benchmark}-{ctx.config.sku_name}.json"
        )
        with open(path, "w") as fh:
            json.dump(result.as_dict(), fh, indent=2, default=str)
        self.copied.append(path)
        return {"copied": [path]}


class ResilienceHook(Hook):
    """SLO compliance and resilience accounting under fault injection.

    Reads the ``resilience_*`` counters the
    :class:`~repro.workloads.runner.BenchmarkHarness` attaches when a
    run carries a resilience policy.  For fault-free runs the section
    is simply ``{"enabled": False}`` so every report keeps the same
    shape.
    """

    name = "resilience"

    def after_run(self, ctx: RunContext, result: WorkloadResult) -> Dict[str, object]:
        extra = result.extra
        if "resilience_requests" not in extra:
            return {"enabled": False}
        requests = extra.get("resilience_requests", 0.0)
        attempts = extra.get("resilience_attempts", 0.0)
        failures = extra.get("resilience_failures", 0.0)
        goodput = extra.get("resilience_goodput_rps", 0.0)
        throughput = result.throughput_rps
        # Device stall time (an attached IoStatHook device, e.g.
        # StorageBench's block device) is SLO-relevant: seconds the
        # engine spent refusing foreground puts are seconds the node
        # was not meeting its objective, even when the requests that
        # did finish look fast.  Fold it into the goodput accounting
        # instead of leaving it to the iostat section alone.
        stall_seconds = extra.get("io_stall_seconds", 0.0)
        elapsed = extra.get("measured_seconds", ctx.config.measure_seconds)
        stall_fraction = min(1.0, stall_seconds / elapsed) if elapsed > 0 else 0.0
        slo_compliance = extra.get("resilience_slo_compliance", 1.0)
        return {
            "enabled": True,
            "scenario": ctx.config.fault_scenario or "custom",
            "requests": requests,
            "error_rate": failures / requests if requests else 0.0,
            "retry_amplification": attempts / requests if requests else 1.0,
            "retries": extra.get("resilience_retries", 0.0),
            "timeouts": extra.get("resilience_timeouts", 0.0),
            "hedges": extra.get("resilience_hedges", 0.0),
            "hedge_wins": extra.get("resilience_hedge_wins", 0.0),
            "breaker_rejections": extra.get("resilience_breaker_rejections", 0.0),
            "net_drops": extra.get("resilience_net_drops", 0.0),
            "unavailable": extra.get("resilience_unavailable", 0.0),
            "slo_latency_ms": extra.get("resilience_slo_latency_s", 0.0) * 1000.0,
            "slo_compliance_pct": slo_compliance * 100.0,
            "goodput_rps": goodput,
            "goodput_fraction": goodput / throughput if throughput else 0.0,
            "device_stall_seconds": stall_seconds,
            "stall_fraction_of_window": stall_fraction,
            "stall_adjusted_slo_compliance_pct": (
                slo_compliance * (1.0 - stall_fraction) * 100.0
            ),
            "stall_adjusted_goodput_rps": goodput * (1.0 - stall_fraction),
            "fault_events_applied": extra.get("fault_events_applied", 0.0),
        }


class SloControlHook(Hook):
    """In-run SLO control plane accounting.

    Reads the ``slo_*`` counters the
    :class:`~repro.workloads.runner.BenchmarkHarness` attaches when a
    run carries an enabled
    :class:`~repro.faults.control.SloControlPolicy`: windowed
    percentile signals, shed/admitted counts, admission rejections,
    brownout relief adjustments, and the goodput (completions meeting
    the SLO) those behaviors protect.  Runs without the control plane
    report ``{"enabled": False}`` so every report keeps the same shape.
    """

    name = "slo_control"

    def after_run(self, ctx: RunContext, result: WorkloadResult) -> Dict[str, object]:
        extra = result.extra
        if "slo_windows" not in extra:
            return {"enabled": False}
        offered = extra.get("slo_offered", 0.0)
        shed = extra.get("slo_shed", 0.0)
        section: Dict[str, object] = {
            "enabled": True,
            "scenario": ctx.config.fault_scenario or "custom",
            "windows": extra.get("slo_windows", 0.0),
            "window_completions": extra.get("slo_window_completions", 0.0),
            "slo_latency_ms": extra.get("slo_latency_s", 0.0) * 1000.0,
            "offered": offered,
            "admitted": extra.get("slo_admitted", 0.0),
            "shed": shed,
            "shed_fraction": shed / offered if offered else 0.0,
            "admission_rejections": extra.get("slo_admission_rejections", 0.0),
            "instances": extra.get("slo_instances", 0.0),
            "breached_windows": extra.get("slo_breached_windows", 0.0),
            "healthy_windows": extra.get("slo_healthy_windows", 0.0),
            "shed_steps": extra.get("slo_shed_steps", 0.0),
            "shed_recoveries": extra.get("slo_shed_recoveries", 0.0),
            "drop_probability": extra.get("slo_drop_probability", 0.0),
            "max_drop_probability": extra.get("slo_max_drop_probability", 0.0),
            "brownout_activations": extra.get("slo_brownout_activations", 0.0),
            "brownout_recoveries": extra.get("slo_brownout_recoveries", 0.0),
            "brownout_steps": extra.get("slo_brownout_steps", 0.0),
            "relief_factor": extra.get("slo_relief_factor", 1.0),
            "goodput_rps": extra.get("slo_goodput_rps", 0.0),
            "goodput_fraction": extra.get("slo_goodput_fraction", 0.0),
            "windowed_p50_ms": extra.get("slo_p50", 0.0) * 1000.0,
            "windowed_p95_ms": extra.get("slo_p95", 0.0) * 1000.0,
            "windowed_p99_ms": extra.get("slo_p99", 0.0) * 1000.0,
            "stall_seconds": extra.get("slo_stall_seconds", 0.0),
            "window_fields": list(WindowSnapshot.ROW_FIELDS),
            "window_series": extra.get("slo_window_series", []),
        }
        # Token-level SLO signals (llmbench): TTFT and inter-token
        # percentiles join the SLO section when the workload reports
        # them, so serving runs are judged at token granularity too.
        if "slo_ttft_p99_s" in extra:
            section["ttft_p50_ms"] = extra.get("slo_ttft_p50_s", 0.0) * 1000.0
            section["ttft_p99_ms"] = extra.get("slo_ttft_p99_s", 0.0) * 1000.0
            section["itl_p99_ms"] = extra.get("slo_itl_p99_s", 0.0) * 1000.0
        return section


class LlmServingHook(Hook):
    """Token-serving engine accounting (llmbench).

    Reads the ``llm_*`` counters the llmbench family attaches to
    ``result.extra``: token throughput, TTFT/inter-token percentiles,
    KV-cache residency and preemption pressure, prefix-cache hit rate,
    and continuous-batching queue depths.  Non-serving workloads report
    ``{"enabled": False}`` so every report keeps the same shape.
    """

    name = "llm_serving"

    def after_run(self, ctx: RunContext, result: WorkloadResult) -> Dict[str, object]:
        extra = result.extra
        if "llm_decoded_tokens" not in extra:
            return {"enabled": False}
        budget = extra.get("llm_kv_budget_bytes", 0.0)
        peak = extra.get("llm_kv_peak_bytes", 0.0)
        prefill = extra.get("llm_prefill_tokens", 0.0)
        cached = extra.get("llm_cached_prefix_tokens", 0.0)
        return {
            "enabled": True,
            "replicas": extra.get("llm_replicas", 0.0),
            "batch_slots": extra.get("llm_batch_slots", 0.0),
            "sessions_started": extra.get("llm_sessions_started", 0.0),
            "turns_submitted": extra.get("llm_turns_submitted", 0.0),
            "turns_completed": extra.get("llm_turns_completed", 0.0),
            "engine_steps": extra.get("llm_engine_steps", 0.0),
            "tokens_per_second": extra.get("llm_tokens_per_second", 0.0),
            "prefill_tokens": prefill,
            "decoded_tokens": extra.get("llm_decoded_tokens", 0.0),
            "prefix_hit_rate": extra.get("llm_prefix_hit_rate", 0.0),
            "prefill_cached_fraction": cached / prefill if prefill else 0.0,
            "ttft_p50_ms": extra.get("llm_ttft_p50_s", 0.0) * 1000.0,
            "ttft_p99_ms": extra.get("llm_ttft_p99_s", 0.0) * 1000.0,
            "itl_p50_ms": extra.get("llm_itl_p50_s", 0.0) * 1000.0,
            "itl_p99_ms": extra.get("llm_itl_p99_s", 0.0) * 1000.0,
            "kv_budget_gb": budget / 1e9,
            "kv_peak_gb": peak / 1e9,
            "kv_peak_util_pct": peak / budget * 100.0 if budget else 0.0,
            "kv_overflow_tokens": extra.get("llm_kv_overflow_tokens", 0.0),
            "preemptions": extra.get("llm_kv_preemptions", 0.0),
            "admission_blocked_steps": extra.get(
                "llm_kv_admission_blocked", 0.0
            ),
            "queue_depth_peak": extra.get("llm_queue_depth_peak", 0.0),
            "queue_depth_end": extra.get("llm_queue_depth_end", 0.0),
        }


class IoStatHook(Hook):
    """Block-device and storage-engine I/O accounting.

    Reads the ``io_*`` counters a device-backed workload (StorageBench)
    attaches to ``result.extra``: device traffic, time-averaged queue
    depth, compaction/flush bytes, and write-stall time.  Workloads
    without a device report ``{"enabled": False}`` so every report
    keeps the same shape.
    """

    name = "iostat"

    def after_run(self, ctx: RunContext, result: WorkloadResult) -> Dict[str, object]:
        extra = result.extra
        if "io_reads" not in extra:
            return {"enabled": False}
        reads = extra.get("io_reads", 0.0)
        writes = extra.get("io_writes", 0.0)
        return {
            "enabled": True,
            "device": ctx.config.sku.storage,
            "reads": reads,
            "writes": writes,
            "read_mb": extra.get("io_read_bytes", 0.0) / 1e6,
            "write_mb": extra.get("io_write_bytes", 0.0) / 1e6,
            "mean_queue_depth": extra.get("io_mean_queue_depth", 0.0),
            "queue_wait_ms_per_op": (
                extra.get("io_queue_wait_s", 0.0) / (reads + writes) * 1000.0
                if reads + writes
                else 0.0
            ),
            "device_util_pct": extra.get("io_device_util", 0.0) * 100.0,
            "compaction_mb": extra.get("io_compaction_bytes", 0.0) / 1e6,
            "compactions": extra.get("io_compactions", 0.0),
            "flushes": extra.get("io_flushes", 0.0),
            "wal_mb": extra.get("io_wal_bytes", 0.0) / 1e6,
            "block_cache_hit_rate": extra.get("io_cache_hit_rate", 0.0),
            "bloom_fp_rate": extra.get("io_bloom_fp_rate", 0.0),
            "stall_seconds": extra.get("io_stall_seconds", 0.0),
            "stall_events": extra.get("io_stall_events", 0.0),
            "stall_p99_ms": extra.get("io_stall_p99_s", 0.0) * 1000.0,
        }


class ShardHook(Hook):
    """Intra-run sharding accounting.

    Reports which role a run played in a sharded execution: a *shard*
    sub-run states its index and derived seed; a *merged* parent report
    surfaces the per-shard breakdown lists the merge attaches to
    ``result.extra`` (:mod:`repro.exec.shard`).  Unsharded runs report
    ``{"enabled": False}`` so every report keeps the same shape.
    """

    name = "sharding"

    def after_run(self, ctx: RunContext, result: WorkloadResult) -> Dict[str, object]:
        config = ctx.config
        if config.shards <= 1:
            return {"enabled": False}
        if config.shard_index >= 0:
            return {
                "enabled": True,
                "role": "shard",
                "shards": config.shards,
                "shard_index": config.shard_index,
                "shard_seed": config.seed,
            }
        extra = result.extra
        return {
            "enabled": True,
            "role": "merged",
            "shards": config.shards,
            "shard_seeds": list(extra.get("shard_seeds", [])),
            "shard_throughput_rps": list(
                extra.get("shard_throughput_rps", [])
            ),
            "shard_completions": list(extra.get("shard_completions", [])),
            "shard_measured_seconds": list(
                extra.get("shard_measured_seconds", [])
            ),
        }


class HookRegistry:
    """Named collection of hooks applied to every run."""

    def __init__(self, hooks: Optional[List[Hook]] = None) -> None:
        self._hooks: Dict[str, Hook] = {}
        for hook in hooks or []:
            self.register(hook)

    def register(self, hook: Hook) -> None:
        if hook.name in self._hooks:
            raise HookError(f"hook {hook.name!r} is already registered")
        self._hooks[hook.name] = hook

    def unregister(self, name: str) -> None:
        if name not in self._hooks:
            raise HookError(f"no hook named {name!r}")
        del self._hooks[name]

    def names(self) -> List[str]:
        return list(self._hooks)

    def run_before(self, ctx: RunContext) -> None:
        for hook in self._hooks.values():
            hook.before_run(ctx)

    def run_after(
        self, ctx: RunContext, result: WorkloadResult
    ) -> Dict[str, Dict[str, object]]:
        """Every hook's report section, keyed by hook name.

        A hook that raises marks its own section as failed instead of
        aborting the run: the benchmark result is already computed by
        the time hooks fire, and losing it to a broken monitoring
        plugin inverts the value hierarchy.
        """
        sections: Dict[str, Dict[str, object]] = {}
        for name, hook in self._hooks.items():
            try:
                sections[name] = hook.after_run(ctx, result)
            except Exception as exc:
                sections[name] = {
                    "hook_failed": True,
                    "error": f"{type(exc).__name__}: {exc}",
                }
        return sections


def default_hooks() -> HookRegistry:
    """The hook set Section 3.1 lists."""
    return HookRegistry(
        [
            CpuUtilHook(),
            MemStatHook(),
            NetStatHook(),
            CpuFreqHook(),
            PowerHook(),
            TopdownHook(),
            UarchHook(),
            TimelineHook(),
            ResilienceHook(),
            SloControlHook(),
            LlmServingHook(),
            IoStatHook(),
            ShardHook(),
        ]
    )
