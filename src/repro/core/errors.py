"""Framework exception hierarchy."""

from __future__ import annotations


class DCPerfError(Exception):
    """Base class for all framework errors."""


class BenchmarkNotFoundError(DCPerfError):
    """Raised when a benchmark name cannot be resolved."""


class HookError(DCPerfError):
    """Raised when a hook fails during a benchmark run."""


class ConfigurationError(DCPerfError):
    """Raised on invalid run configuration."""
