"""Suite orchestration: run all benchmarks, normalize, aggregate.

Reproduces the paper's scoring methodology: each benchmark's metric is
normalized to SKU1 and the suite score is the geometric mean (Section
3.1).  The production score is the power-weighted geomean of the
production counterparts (Section 4.1: "weighted by each workload's
power consumption in our fleet").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.benchmark import Benchmark, BenchmarkReport
from repro.core.scoring import BASELINE_SKU, ScoreBoard
from repro.workloads.base import RunConfig
from repro.workloads.registry import dcperf_benchmarks

#: Fleet power weights per workload category (web dominates Meta's
#: general-purpose fleet; Section 3.2 says the modeled categories are
#: the top power consumers).
FLEET_POWER_WEIGHTS: Dict[str, float] = {
    "mediawiki": 0.30,
    "djangobench": 0.20,
    "feedsim": 0.20,
    "taobench": 0.15,
    "sparkbench": 0.10,
    "videotranscode": 0.05,
}


@dataclass
class SuiteReport:
    """Per-benchmark reports plus the aggregate scores."""

    sku: str
    kernel: str
    reports: Dict[str, BenchmarkReport]
    scores: Dict[str, float]
    overall_score: float
    perf_per_watt: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "sku": self.sku,
            "kernel": self.kernel,
            "scores": dict(self.scores),
            "overall_score": self.overall_score,
            "perf_per_watt": dict(self.perf_per_watt),
            "reports": {k: v.as_dict() for k, v in self.reports.items()},
        }


class DCPerfSuite:
    """Runs the whole benchmark suite and scores it against SKU1."""

    def __init__(
        self,
        benchmark_names: Optional[List[str]] = None,
        variant: str = "",
        baseline_sku: str = BASELINE_SKU,
        measure_seconds: float = 1.5,
    ) -> None:
        self.benchmark_names = benchmark_names or dcperf_benchmarks()
        #: '' for the DCPerf benchmarks, ':prod' for production twins.
        self.variant = variant
        self.scoreboard = ScoreBoard(baseline_sku)
        self.measure_seconds = measure_seconds
        self._baseline_cache: Dict[str, BenchmarkReport] = {}

    def _config(self, sku: str, kernel: str, seed: int) -> RunConfig:
        return RunConfig(
            sku_name=sku,
            kernel_version=kernel,
            seed=seed,
            measure_seconds=self.measure_seconds,
        )

    def _run_one(self, name: str, config: RunConfig) -> BenchmarkReport:
        return Benchmark.by_name(name + self.variant).run(config)

    def _ensure_baselines(self, kernel: str, seed: int) -> None:
        for name in self.benchmark_names:
            if not self.scoreboard.has_baseline(name):
                config = self._config(self.scoreboard.baseline_sku, kernel, seed)
                report = self._run_one(name, config)
                self._baseline_cache[name] = report
                self.scoreboard.register_baseline(name, report.metric_value)

    def run(self, sku: str, kernel: str = "6.9", seed: int = 7) -> SuiteReport:
        """Run every benchmark on a SKU and score against the baseline."""
        self._ensure_baselines(kernel, seed)
        reports: Dict[str, BenchmarkReport] = {}
        scores: Dict[str, float] = {}
        perf_per_watt: Dict[str, float] = {}
        for name in self.benchmark_names:
            if sku == self.scoreboard.baseline_sku and name in self._baseline_cache:
                report = self._baseline_cache[name]
            else:
                report = self._run_one(name, self._config(sku, kernel, seed))
            report.score = self.scoreboard.score(name, report.metric_value)
            reports[name] = report
            scores[name] = report.score
            perf_per_watt[name] = report.result.perf_per_watt()
        overall = self.scoreboard.suite_score(scores)
        return SuiteReport(
            sku=sku,
            kernel=kernel,
            reports=reports,
            scores=scores,
            overall_score=overall,
            perf_per_watt=perf_per_watt,
        )

    def production_score(self, suite_report: SuiteReport) -> float:
        """Power-weighted aggregate (the Figure 2 'Production' method)."""
        return self.scoreboard.suite_score(
            suite_report.scores, weights=FLEET_POWER_WEIGHTS
        )
