"""Suite orchestration: run all benchmarks, normalize, aggregate.

Reproduces the paper's scoring methodology: each benchmark's metric is
normalized to SKU1 and the suite score is the geometric mean (Section
3.1).  The production score is the power-weighted geomean of the
production counterparts (Section 4.1: "weighted by each workload's
power consumption in our fleet").

Execution goes through :class:`repro.exec.executor.SweepExecutor`:
baseline and target runs are expanded into one deduplicated grid, fan
out over a process pool when ``max_workers > 1``, and are memoized in
the persistent run cache — so SKU1 baselines are computed once per
machine rather than once per script.  Baselines are keyed by the full
run fingerprint (benchmark, SKU, kernel, seed, measurement window,
model/code digests), so suites with different ``measure_seconds`` or
kernels can never cross-contaminate each other's normalization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.benchmark import BenchmarkReport
from repro.core.scoring import BASELINE_SKU, ScoreBoard
from repro.exec.cache import RunCache
from repro.exec.executor import OnPoint, SweepExecutor
from repro.exec.spec import RunPoint, run_fingerprint
from repro.workloads.registry import dcperf_benchmarks, llm_serving_benchmarks

#: Fleet power weights per workload category (web dominates Meta's
#: general-purpose fleet; Section 3.2 says the modeled categories are
#: the top power consumers).  The llmbench serving mixes carry the
#: fleet's fastest-growing power share (the paper's §8 future-work
#: category), carved out of the established categories pro rata.
FLEET_POWER_WEIGHTS: Dict[str, float] = {
    "mediawiki": 0.25,
    "djangobench": 0.17,
    "feedsim": 0.17,
    "taobench": 0.13,
    "sparkbench": 0.09,
    "videotranscode": 0.05,
    "storagebench": 0.05,
    "llmbench-chat": 0.05,
    "llmbench-codegen": 0.04,
}


@dataclass
class SuiteReport:
    """Per-benchmark reports plus the aggregate scores."""

    sku: str
    kernel: str
    reports: Dict[str, BenchmarkReport]
    scores: Dict[str, float]
    overall_score: float
    perf_per_watt: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "sku": self.sku,
            "kernel": self.kernel,
            "scores": dict(self.scores),
            "overall_score": self.overall_score,
            "perf_per_watt": dict(self.perf_per_watt),
            "reports": {k: v.as_dict() for k, v in self.reports.items()},
        }


class DCPerfSuite:
    """Runs the whole benchmark suite and scores it against SKU1."""

    def __init__(
        self,
        benchmark_names: Optional[List[str]] = None,
        variant: str = "",
        baseline_sku: str = BASELINE_SKU,
        measure_seconds: float = 1.5,
        executor: Optional[SweepExecutor] = None,
        max_workers: int = 1,
        cache: Optional[RunCache] = None,
        faults: str = "",
        early_stop: bool = False,
    ) -> None:
        if benchmark_names:
            self.benchmark_names = benchmark_names
        elif variant == ":prod":
            # The llmbench mixes have no production twin; prod suites
            # score the published categories only.
            self.benchmark_names = dcperf_benchmarks()
        else:
            self.benchmark_names = dcperf_benchmarks() + llm_serving_benchmarks()
        #: '' for the DCPerf benchmarks, ':prod' for production twins.
        self.variant = variant
        self.scoreboard = ScoreBoard(baseline_sku)
        self.measure_seconds = measure_seconds
        #: Named fault scenario applied to every point, baseline
        #: included — scores then compare SKUs under the same faults,
        #: and fault-free baselines can never cross-contaminate (the
        #: scenario is part of each point's fingerprint).
        self.faults = faults
        #: Convergence-based early termination for every point.  Part
        #: of the run fingerprint, so early-stopped sweeps and
        #: full-window sweeps cache separately and baselines never mix.
        self.early_stop = early_stop
        self.executor = executor or SweepExecutor(
            max_workers=max_workers, cache=cache
        )

    def _point(self, name: str, sku: str, kernel: str, seed: int) -> RunPoint:
        return RunPoint(
            benchmark=name,
            sku=sku,
            kernel=kernel,
            seed=seed,
            variant=self.variant,
            measure_seconds=self.measure_seconds,
            faults=self.faults,
            early_stop=self.early_stop,
        )

    def _baseline_key(self, name: str, kernel: str, seed: int) -> str:
        """Scoreboard key for a benchmark's baseline: its fingerprint.

        Fingerprint keying means a baseline computed under one
        (kernel, seed, measure_seconds, model version) is never reused
        for another — each combination earns its own normalization.
        """
        point = self._point(name, self.scoreboard.baseline_sku, kernel, seed)
        return run_fingerprint(point)

    def run_many(
        self,
        skus: Sequence[str],
        kernel: str = "6.9",
        seed: int = 7,
        on_point: Optional[OnPoint] = None,
    ) -> Dict[str, SuiteReport]:
        """Run and score the suite on several SKUs in one sweep.

        Baseline and per-SKU points are expanded into a single grid so
        a parallel executor can overlap everything; results come back
        deterministically in spec order regardless of worker count.
        ``on_point`` streams each unique point's report as it resolves
        (before scoring), so long suite sweeps can report progress —
        with the warm pool, completions arrive while workers are still
        busy with the rest of the grid.
        """
        skus = list(skus)
        names = self.benchmark_names
        points: List[RunPoint] = [
            self._point(name, self.scoreboard.baseline_sku, kernel, seed)
            for name in names
        ]
        for sku in skus:
            points.extend(self._point(name, sku, kernel, seed) for name in names)
        all_reports = self.executor.run(points, on_point=on_point)

        stride = len(names)
        for name, report in zip(names, all_reports[:stride]):
            key = self._baseline_key(name, kernel, seed)
            if not self.scoreboard.has_baseline(key):
                self.scoreboard.register_baseline(key, report.metric_value)

        out: Dict[str, SuiteReport] = {}
        for index, sku in enumerate(skus):
            chunk = all_reports[stride * (index + 1) : stride * (index + 2)]
            reports: Dict[str, BenchmarkReport] = {}
            scores: Dict[str, float] = {}
            perf_per_watt: Dict[str, float] = {}
            for name, report in zip(names, chunk):
                key = self._baseline_key(name, kernel, seed)
                report.score = self.scoreboard.score(key, report.metric_value)
                reports[name] = report
                scores[name] = report.score
                perf_per_watt[name] = report.result.perf_per_watt()
            out[sku] = SuiteReport(
                sku=sku,
                kernel=kernel,
                reports=reports,
                scores=scores,
                overall_score=self.scoreboard.suite_score(scores),
                perf_per_watt=perf_per_watt,
            )
        return out

    def run(
        self,
        sku: str,
        kernel: str = "6.9",
        seed: int = 7,
        on_point: Optional[OnPoint] = None,
    ) -> SuiteReport:
        """Run every benchmark on a SKU and score against the baseline."""
        return self.run_many(
            [sku], kernel=kernel, seed=seed, on_point=on_point
        )[sku]

    def production_score(self, suite_report: SuiteReport) -> float:
        """Power-weighted aggregate (the Figure 2 'Production' method)."""
        return self.scoreboard.suite_score(
            suite_report.scores, weights=FLEET_POWER_WEIGHTS
        )
