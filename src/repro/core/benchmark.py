"""Benchmark wrapper: install/run lifecycle + hooked reporting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.errors import BenchmarkNotFoundError
from repro.core.hooks import HookRegistry, RunContext, default_hooks
from repro.core.report import system_info
from repro.workloads.base import RunConfig, Workload, WorkloadResult
from repro.workloads.registry import get_workload


@dataclass
class BenchmarkReport:
    """Everything DCPerf reports for one benchmark run (Section 3.1):
    parameters, application metrics, system info, and hook sections."""

    benchmark: str
    metric_name: str
    metric_value: float
    result: WorkloadResult
    system: Dict[str, object]
    hook_sections: Dict[str, Dict[str, object]] = field(default_factory=dict)
    score: Optional[float] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "metric_name": self.metric_name,
            "metric_value": self.metric_value,
            "score": self.score,
            "system": dict(self.system),
            "result": self.result.as_dict(),
            "hooks": {k: dict(v) for k, v in self.hook_sections.items()},
        }


class Benchmark:
    """A DCPerf benchmark: a workload plus the install/run lifecycle."""

    def __init__(self, workload: Workload) -> None:
        self.workload = workload
        self._installed = False

    @classmethod
    def by_name(cls, name: str) -> "Benchmark":
        try:
            return cls(get_workload(name))
        except KeyError as exc:
            raise BenchmarkNotFoundError(str(exc)) from exc

    @property
    def name(self) -> str:
        return self.workload.name

    @property
    def installed(self) -> bool:
        return self._installed

    def install(self) -> Dict[str, object]:
        """Prepare the benchmark (the DCPerf ``install`` step).

        For simulated workloads, installation resolves the calibrated
        profile and validates it; data-driven benchmarks additionally
        build their datasets (SparkBench's validation tables).
        """
        description = self.workload.describe()
        if hasattr(self.workload, "validate_query"):
            validation = self.workload.validate_query()
            description["dataset_groups"] = validation.groups
        if hasattr(self.workload, "validate_pipeline"):
            validation = self.workload.validate_pipeline()
            description["pipeline_psnr_db"] = validation.mean_psnr_db
        self._installed = True
        return description

    def run(
        self,
        config: Optional[RunConfig] = None,
        hooks: Optional[HookRegistry] = None,
    ) -> BenchmarkReport:
        """Run the benchmark and assemble the hooked report."""
        config = config or RunConfig()
        if config.shards > 1 and config.shard_index < 0:
            raise ValueError(
                f"shards={config.shards} runs execute through the "
                "SweepExecutor (or execute_point), which expands the run "
                "into shard sub-points and merges their reports; "
                "Benchmark.run only executes single environments"
            )
        hooks = hooks or default_hooks()
        if not self._installed:
            self.install()
        ctx = RunContext(
            benchmark=self.name,
            config=config,
            metadata={
                "network_bytes_per_request": (
                    self.workload.characteristics.network_bytes_per_request
                ),
            },
        )
        hooks.run_before(ctx)
        result = self.workload.run(config)
        sections = hooks.run_after(ctx, result)
        return BenchmarkReport(
            benchmark=self.name,
            metric_name=self.workload.metric_name,
            metric_value=result.throughput_rps,
            result=result,
            system=system_info(config),
            hook_sections=sections,
        )
