"""The DCPerf automation framework.

Mirrors the architecture of Figure 1: an automation layer with
``install`` / ``run`` commands (:mod:`repro.core.runner`,
:mod:`repro.core.cli`), result reporting with per-benchmark normalized
scores and a geometric-mean suite score (:mod:`repro.core.scoring`,
:mod:`repro.core.report`), and an extensible hook system for
performance monitoring (:mod:`repro.core.hooks`).
"""

from repro.core.benchmark import Benchmark, BenchmarkReport
from repro.core.errors import BenchmarkNotFoundError, DCPerfError, HookError
from repro.core.hooks import Hook, HookRegistry, RunContext, default_hooks
from repro.core.scoring import ScoreBoard, geometric_mean
from repro.core.suite import DCPerfSuite, SuiteReport

__all__ = [
    "Benchmark",
    "BenchmarkReport",
    "DCPerfError",
    "BenchmarkNotFoundError",
    "HookError",
    "Hook",
    "HookRegistry",
    "RunContext",
    "default_hooks",
    "ScoreBoard",
    "geometric_mean",
    "DCPerfSuite",
    "SuiteReport",
]
