"""Declarative Thrift struct schemas.

Workload payloads (TAO objects, feed stories, timeline entries) are
declared as :class:`ThriftStruct` schemas so their encode/decode work
is real and their wire sizes are measurable — the paper replicates
production request/response size distributions, and these schemas are
where that replication happens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence

from repro.rpc.protocol import (
    BinaryProtocolReader,
    BinaryProtocolWriter,
    ProtocolError,
    read_struct_fields,
    write_struct_fields,
)


@dataclass(frozen=True)
class ThriftField:
    """One field of a struct schema."""

    fid: int
    name: str
    required: bool = True

    def __post_init__(self) -> None:
        if self.fid < 1:
            raise ValueError("field ids start at 1")
        if not self.name:
            raise ValueError("field name must be non-empty")


class ThriftStruct:
    """A named struct schema mapping field names to wire field ids."""

    def __init__(self, name: str, fields: Sequence[ThriftField]) -> None:
        if not name:
            raise ValueError("struct name must be non-empty")
        fids = [f.fid for f in fields]
        if len(set(fids)) != len(fids):
            raise ValueError(f"{name}: duplicate field ids")
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise ValueError(f"{name}: duplicate field names")
        self.name = name
        self.fields = list(fields)
        self._by_name = {f.name: f for f in fields}
        self._by_fid = {f.fid: f for f in fields}

    def encode(self, values: Dict[str, Any]) -> bytes:
        """Encode a name->value dict according to the schema."""
        payload: Dict[int, Any] = {}
        for field in self.fields:
            if field.name in values and values[field.name] is not None:
                payload[field.fid] = values[field.name]
            elif field.required:
                raise ProtocolError(
                    f"{self.name}: missing required field {field.name!r}"
                )
        unknown = set(values) - set(self._by_name)
        if unknown:
            raise ProtocolError(f"{self.name}: unknown fields {sorted(unknown)}")
        writer = BinaryProtocolWriter()
        write_struct_fields(writer, payload)
        return writer.getvalue()

    def decode(self, data: bytes) -> Dict[str, Any]:
        """Decode wire bytes back into a name->value dict.

        Unknown field ids are skipped (forward compatibility), and
        missing required fields raise.
        """
        reader = BinaryProtocolReader(data)
        raw = read_struct_fields(reader)
        out: Dict[str, Any] = {}
        for fid, value in raw.items():
            field = self._by_fid.get(fid)
            if field is not None:
                out[field.name] = value
        for field in self.fields:
            if field.required and field.name not in out:
                raise ProtocolError(
                    f"{self.name}: missing required field {field.name!r} on decode"
                )
        return out

    def wire_size(self, values: Dict[str, Any]) -> int:
        """Serialized size in bytes for the given values."""
        return len(self.encode(values))


def struct_from_dict(name: str, example: Dict[str, Any]) -> ThriftStruct:
    """Derive a schema from an example payload (all fields required)."""
    fields: List[ThriftField] = [
        ThriftField(fid=i + 1, name=key) for i, key in enumerate(sorted(example))
    ]
    return ThriftStruct(name, fields)
