"""Thrift compact protocol codec.

Implements the wire format of Apache Thrift's ``TCompactProtocol``:
zigzag-varint integers, short-form field headers (field-id delta packed
with the type nibble), size-prefixed strings, and typed containers.
Production Thrift deployments prefer compact over binary for its 2-4x
smaller integers — both codecs live here so the serialization tax can
be compared on real bytes.
"""

from __future__ import annotations

import enum
import struct
from typing import Any, Dict, List, Tuple

from repro.rpc.protocol import ProtocolError


class CompactType(enum.IntEnum):
    """Compact-protocol type nibbles (matching Apache Thrift)."""

    STOP = 0x00
    TRUE = 0x01
    FALSE = 0x02
    BYTE = 0x03
    I16 = 0x04
    I32 = 0x05
    I64 = 0x06
    DOUBLE = 0x07
    BINARY = 0x08
    LIST = 0x09
    SET = 0x0A
    MAP = 0x0B
    STRUCT = 0x0C


def zigzag_encode(value: int) -> int:
    """Map signed to unsigned: 0,-1,1,-2 -> 0,1,2,3."""
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def zigzag_decode(encoded: int) -> int:
    return (encoded >> 1) if not encoded & 1 else -((encoded + 1) >> 1)


def write_varint(out: bytearray, value: int) -> None:
    """Unsigned LEB128 varint."""
    if value < 0:
        raise ProtocolError("varints encode unsigned values")
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def read_varint(data: bytes, pos: int) -> Tuple[int, int]:
    """Returns (value, new_pos); raises on truncation."""
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise ProtocolError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise ProtocolError("varint too long")


def _compact_type_of(value: Any) -> CompactType:
    if isinstance(value, bool):
        return CompactType.TRUE if value else CompactType.FALSE
    if isinstance(value, int):
        return CompactType.I64
    if isinstance(value, float):
        return CompactType.DOUBLE
    if isinstance(value, (str, bytes)):
        return CompactType.BINARY
    if isinstance(value, (list, tuple)):
        return CompactType.LIST
    if isinstance(value, dict):
        return CompactType.MAP
    raise ProtocolError(f"cannot compact-encode {type(value).__name__}")


def _write_value(out: bytearray, value: Any) -> None:
    ctype = _compact_type_of(value)
    if ctype in (CompactType.TRUE, CompactType.FALSE):
        out.append(1 if value else 0)
    elif ctype == CompactType.I64:
        write_varint(out, zigzag_encode(value))
    elif ctype == CompactType.DOUBLE:
        out.extend(struct.pack("<d", value))
    elif ctype == CompactType.BINARY:
        payload = value.encode("utf-8") if isinstance(value, str) else value
        write_varint(out, len(payload))
        out.extend(payload)
    elif ctype == CompactType.LIST:
        etype = _compact_type_of(value[0]) if value else CompactType.I64
        if etype == CompactType.FALSE:
            etype = CompactType.TRUE  # container element type for bools
        size = len(value)
        if size < 15:
            out.append((size << 4) | int(etype))
        else:
            out.append(0xF0 | int(etype))
            write_varint(out, size)
        for item in value:
            item_type = _compact_type_of(item)
            if item_type == CompactType.FALSE:
                item_type = CompactType.TRUE
            if item_type != etype:
                raise ProtocolError("heterogeneous list elements")
            _write_value(out, item)
    elif ctype == CompactType.MAP:
        items = list(value.items())
        if not items:
            out.append(0)
            return
        write_varint(out, len(items))
        ktype = _compact_type_of(items[0][0])
        vtype = _compact_type_of(items[0][1])
        out.append((int(ktype) << 4) | int(vtype))
        for key, val in items:
            _write_value(out, key)
            _write_value(out, val)
    else:  # pragma: no cover
        raise ProtocolError(f"unhandled compact type {ctype}")


def _read_value(data: bytes, pos: int, ctype: CompactType) -> Tuple[Any, int]:
    if ctype in (CompactType.TRUE, CompactType.FALSE):
        if pos >= len(data):
            raise ProtocolError("truncated bool")
        return data[pos] != 0, pos + 1
    if ctype in (CompactType.BYTE, CompactType.I16, CompactType.I32, CompactType.I64):
        raw, pos = read_varint(data, pos)
        return zigzag_decode(raw), pos
    if ctype == CompactType.DOUBLE:
        if pos + 8 > len(data):
            raise ProtocolError("truncated double")
        return struct.unpack("<d", data[pos : pos + 8])[0], pos + 8
    if ctype == CompactType.BINARY:
        size, pos = read_varint(data, pos)
        if pos + size > len(data):
            raise ProtocolError("truncated binary")
        return data[pos : pos + size], pos + size
    if ctype == CompactType.LIST:
        if pos >= len(data):
            raise ProtocolError("truncated list header")
        header = data[pos]
        pos += 1
        etype = CompactType(header & 0x0F)
        size = header >> 4
        if size == 15:
            size, pos = read_varint(data, pos)
        out: List[Any] = []
        for _ in range(size):
            item, pos = _read_value(data, pos, etype)
            out.append(item)
        return out, pos
    if ctype == CompactType.MAP:
        size, pos = read_varint(data, pos)
        if size == 0:
            return {}, pos
        if pos >= len(data):
            raise ProtocolError("truncated map header")
        header = data[pos]
        pos += 1
        ktype = CompactType(header >> 4)
        vtype = CompactType(header & 0x0F)
        result: Dict[Any, Any] = {}
        for _ in range(size):
            key, pos = _read_value(data, pos, ktype)
            if isinstance(key, bytes):
                key = key.decode("utf-8", errors="replace")
            value, pos = _read_value(data, pos, vtype)
            result[key] = value
        return result, pos
    if ctype == CompactType.STRUCT:
        return decode_compact_struct_at(data, pos)
    raise ProtocolError(f"cannot read compact type {ctype}")


def encode_compact_struct(fields: Dict[int, Any]) -> bytes:
    """Encode field-id -> value pairs with delta field headers."""
    out = bytearray()
    last_fid = 0
    for fid in sorted(fields):
        value = fields[fid]
        if value is None:
            continue
        if fid <= 0:
            raise ProtocolError("field ids must be positive")
        ctype = _compact_type_of(value)
        delta = fid - last_fid
        if 1 <= delta <= 15:
            out.append((delta << 4) | int(ctype))
        else:
            out.append(int(ctype))
            write_varint(out, zigzag_encode(fid))
        if ctype in (CompactType.TRUE, CompactType.FALSE):
            pass  # the bool travels in the type nibble
        else:
            _write_value(out, value)
        last_fid = fid
    out.append(int(CompactType.STOP))
    return bytes(out)


def decode_compact_struct_at(data: bytes, pos: int) -> Tuple[Dict[int, Any], int]:
    """Decode a struct starting at ``pos``; returns (fields, new_pos)."""
    fields: Dict[int, Any] = {}
    last_fid = 0
    while True:
        if pos >= len(data):
            raise ProtocolError("truncated struct (missing STOP)")
        header = data[pos]
        pos += 1
        if header == int(CompactType.STOP):
            return fields, pos
        ctype = CompactType(header & 0x0F)
        delta = header >> 4
        if delta:
            fid = last_fid + delta
        else:
            raw, pos = read_varint(data, pos)
            fid = zigzag_decode(raw)
        if ctype in (CompactType.TRUE, CompactType.FALSE):
            fields[fid] = ctype == CompactType.TRUE
        else:
            fields[fid], pos = _read_value(data, pos, ctype)
        last_fid = fid


def decode_compact_struct(data: bytes) -> Dict[int, Any]:
    """Decode a struct from the start of ``data``."""
    fields, _ = decode_compact_struct_at(data, 0)
    return fields


# --- message envelope ---------------------------------------------------------

#: TCompactProtocol constants.
PROTOCOL_ID = 0x82
COMPACT_VERSION = 1
_VERSION_MASK = 0x1F
_TYPE_SHIFT = 5


def encode_compact_message(
    name: str, payload: Dict[int, Any], seqid: int = 0, mtype: int = 1
) -> bytes:
    """Encode a full compact-protocol RPC message.

    Envelope: protocol id byte, version/type byte, varint seqid,
    varint-length name, then the argument struct.
    """
    if not 0 <= mtype <= 7:
        raise ProtocolError("message type must fit in 3 bits")
    out = bytearray()
    out.append(PROTOCOL_ID)
    out.append((mtype << _TYPE_SHIFT) | COMPACT_VERSION)
    write_varint(out, seqid)
    encoded_name = name.encode("utf-8")
    write_varint(out, len(encoded_name))
    out.extend(encoded_name)
    out.extend(encode_compact_struct(payload))
    return bytes(out)


def decode_compact_message(data: bytes) -> Tuple[str, int, int, Dict[int, Any]]:
    """Decode a compact message; returns (name, mtype, seqid, fields)."""
    if len(data) < 2:
        raise ProtocolError("truncated compact envelope")
    if data[0] != PROTOCOL_ID:
        raise ProtocolError(f"bad compact protocol id: {data[0]:#x}")
    version = data[1] & _VERSION_MASK
    if version != COMPACT_VERSION:
        raise ProtocolError(f"bad compact version: {version}")
    mtype = data[1] >> _TYPE_SHIFT
    seqid, pos = read_varint(data, 2)
    name_len, pos = read_varint(data, pos)
    if pos + name_len > len(data):
        raise ProtocolError("truncated message name")
    name = data[pos : pos + name_len].decode("utf-8")
    pos += name_len
    fields, _ = decode_compact_struct_at(data, pos)
    return name, mtype, seqid, fields
