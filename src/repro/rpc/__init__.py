"""Thrift-style RPC substrate.

DCPerf's benchmarks are client-server applications that communicate
over the Thrift RPC protocol, and the RPC stack itself is a significant
part of the "datacenter tax".  This package is a real, working
implementation of a Thrift-compatible binary protocol (types, field
IDs, struct/list/map nesting), a framed transport, and a client/server
pair usable both over in-memory channels (unit tests, microbenchmarks)
and inside the discrete-event simulation (workload models account its
serialized byte volumes and cycle costs).
"""

from repro.rpc.protocol import (
    BinaryProtocolReader,
    BinaryProtocolWriter,
    ThriftType,
    decode_message,
    encode_message,
)
from repro.rpc.compact import decode_compact_struct, encode_compact_struct
from repro.rpc.structs import ThriftField, ThriftStruct, struct_from_dict
from repro.rpc.transport import FramedTransport, InMemoryChannel
from repro.rpc.service import RpcClient, RpcError, RpcServer, ServiceHandler

__all__ = [
    "BinaryProtocolReader",
    "BinaryProtocolWriter",
    "ThriftType",
    "encode_message",
    "decode_message",
    "encode_compact_struct",
    "decode_compact_struct",
    "ThriftField",
    "ThriftStruct",
    "struct_from_dict",
    "FramedTransport",
    "InMemoryChannel",
    "RpcClient",
    "RpcServer",
    "RpcError",
    "ServiceHandler",
]
