"""Thrift binary protocol codec.

Implements the wire format of Apache Thrift's ``TBinaryProtocol``
(strict mode): big-endian fixed-width scalars, length-prefixed strings,
type-tagged struct fields terminated by a STOP byte, and typed
list/map/set containers.  Message envelopes carry (name, message type,
sequence id).

This is real serialization code — the datacenter-tax microbenchmarks
(:mod:`repro.dctax.microbench`) measure it, and the workload models use
its byte counts for their traffic modeling.
"""

from __future__ import annotations

import enum
import struct
from typing import Any, Dict, List, Tuple

#: Strict-mode version bits for message envelopes.
VERSION_1 = 0x80010000
VERSION_MASK = 0xFFFF0000

#: Precompiled wire-format packers/unpackers.  ``struct.pack("!i", x)``
#: re-parses the format string (through a cached lookup, but still a
#: dict probe and call indirection) on every scalar; a message is
#: mostly scalars, so the codec binds the compiled forms once at import.
#: ``!bh`` fuses the field-begin (type byte + id i16) into one pack —
#: the concatenated bytes are identical.
_PACK_I8 = struct.Struct("!b").pack
_PACK_I16 = struct.Struct("!h").pack
_PACK_I32 = struct.Struct("!i").pack
_PACK_I64 = struct.Struct("!q").pack
_PACK_F64 = struct.Struct("!d").pack
_PACK_U32 = struct.Struct("!I").pack
_PACK_FIELD = struct.Struct("!bh").pack
_UNPACK_I8 = struct.Struct("!b").unpack
_UNPACK_I16 = struct.Struct("!h").unpack
_UNPACK_I32 = struct.Struct("!i").unpack
_UNPACK_I64 = struct.Struct("!q").unpack
_UNPACK_F64 = struct.Struct("!d").unpack


class ThriftType(enum.IntEnum):
    """Wire type tags (matching Apache Thrift)."""

    STOP = 0
    BOOL = 2
    BYTE = 3
    DOUBLE = 4
    I16 = 6
    I32 = 8
    I64 = 10
    STRING = 11
    STRUCT = 12
    MAP = 13
    SET = 14
    LIST = 15


class MessageType(enum.IntEnum):
    CALL = 1
    REPLY = 2
    EXCEPTION = 3
    ONEWAY = 4


class ProtocolError(Exception):
    """Raised on malformed wire data."""


class BinaryProtocolWriter:
    """Serializes values into Thrift binary wire format."""

    def __init__(self) -> None:
        self._chunks: List[bytes] = []

    def getvalue(self) -> bytes:
        return b"".join(self._chunks)

    # --- scalars ------------------------------------------------------------
    def write_bool(self, value: bool) -> None:
        self._chunks.append(b"\x01" if value else b"\x00")

    def write_byte(self, value: int) -> None:
        self._chunks.append(_PACK_I8(value))

    def write_i16(self, value: int) -> None:
        self._chunks.append(_PACK_I16(value))

    def write_i32(self, value: int) -> None:
        self._chunks.append(_PACK_I32(value))

    def write_i64(self, value: int) -> None:
        self._chunks.append(_PACK_I64(value))

    def write_double(self, value: float) -> None:
        self._chunks.append(_PACK_F64(value))

    def write_binary(self, value: bytes) -> None:
        self._chunks.append(_PACK_I32(len(value)))
        self._chunks.append(value)

    def write_string(self, value: str) -> None:
        self.write_binary(value.encode("utf-8"))

    # --- structure ----------------------------------------------------------
    def write_field_begin(self, ftype: ThriftType, fid: int) -> None:
        self._chunks.append(_PACK_FIELD(int(ftype), fid))

    def write_field_stop(self) -> None:
        self.write_byte(int(ThriftType.STOP))

    def write_list_begin(self, etype: ThriftType, size: int) -> None:
        self.write_byte(int(etype))
        self.write_i32(size)

    def write_map_begin(self, ktype: ThriftType, vtype: ThriftType, size: int) -> None:
        self.write_byte(int(ktype))
        self.write_byte(int(vtype))
        self.write_i32(size)

    def write_message_begin(self, name: str, mtype: MessageType, seqid: int) -> None:
        self._chunks.append(_PACK_U32(VERSION_1 | int(mtype)))
        self.write_string(name)
        self.write_i32(seqid)


class BinaryProtocolReader:
    """Deserializes Thrift binary wire format."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def _take(self, count: int) -> bytes:
        if self._pos + count > len(self._data):
            raise ProtocolError(
                f"truncated wire data: need {count} bytes, have {self.remaining}"
            )
        out = self._data[self._pos : self._pos + count]
        self._pos += count
        return out

    # --- scalars ------------------------------------------------------------
    def read_bool(self) -> bool:
        return self._take(1) != b"\x00"

    def read_byte(self) -> int:
        return _UNPACK_I8(self._take(1))[0]

    def read_i16(self) -> int:
        return _UNPACK_I16(self._take(2))[0]

    def read_i32(self) -> int:
        return _UNPACK_I32(self._take(4))[0]

    def read_i64(self) -> int:
        return _UNPACK_I64(self._take(8))[0]

    def read_double(self) -> float:
        return _UNPACK_F64(self._take(8))[0]

    def read_binary(self) -> bytes:
        size = self.read_i32()
        if size < 0:
            raise ProtocolError(f"negative string length: {size}")
        return self._take(size)

    def read_string(self) -> str:
        return self.read_binary().decode("utf-8")

    # --- structure ----------------------------------------------------------
    def read_field_begin(self) -> Tuple[ThriftType, int]:
        ftype = ThriftType(self.read_byte())
        if ftype == ThriftType.STOP:
            return ftype, 0
        return ftype, self.read_i16()

    def read_list_begin(self) -> Tuple[ThriftType, int]:
        etype = ThriftType(self.read_byte())
        size = self.read_i32()
        if size < 0:
            raise ProtocolError(f"negative list size: {size}")
        return etype, size

    def read_map_begin(self) -> Tuple[ThriftType, ThriftType, int]:
        ktype = ThriftType(self.read_byte())
        vtype = ThriftType(self.read_byte())
        size = self.read_i32()
        if size < 0:
            raise ProtocolError(f"negative map size: {size}")
        return ktype, vtype, size

    def read_message_begin(self) -> Tuple[str, MessageType, int]:
        header = self.read_i32() & 0xFFFFFFFF
        if header & VERSION_MASK != VERSION_1:
            raise ProtocolError(f"bad protocol version: {header:#x}")
        mtype = MessageType(header & 0xFF)
        name = self.read_string()
        seqid = self.read_i32()
        return name, mtype, seqid


# --- dynamic (schema-less) value encoding ------------------------------------

def thrift_type_of(value: Any) -> ThriftType:
    """Infer the wire type for a Python value."""
    if isinstance(value, bool):
        return ThriftType.BOOL
    if isinstance(value, int):
        return ThriftType.I64
    if isinstance(value, float):
        return ThriftType.DOUBLE
    if isinstance(value, (str, bytes)):
        return ThriftType.STRING
    if isinstance(value, (list, tuple)):
        return ThriftType.LIST
    if isinstance(value, dict):
        return ThriftType.MAP
    raise ProtocolError(f"cannot encode python type {type(value).__name__}")


def write_value(writer: BinaryProtocolWriter, value: Any) -> None:
    """Write one dynamically-typed value."""
    wtype = thrift_type_of(value)
    if wtype == ThriftType.BOOL:
        writer.write_bool(value)
    elif wtype == ThriftType.I64:
        writer.write_i64(value)
    elif wtype == ThriftType.DOUBLE:
        writer.write_double(value)
    elif wtype == ThriftType.STRING:
        if isinstance(value, str):
            writer.write_string(value)
        else:
            writer.write_binary(value)
    elif wtype == ThriftType.LIST:
        etype = thrift_type_of(value[0]) if value else ThriftType.I64
        writer.write_list_begin(etype, len(value))
        for item in value:
            if thrift_type_of(item) != etype:
                raise ProtocolError("heterogeneous list elements")
            write_value(writer, item)
    elif wtype == ThriftType.MAP:
        items = list(value.items())
        ktype = thrift_type_of(items[0][0]) if items else ThriftType.STRING
        vtype = thrift_type_of(items[0][1]) if items else ThriftType.I64
        writer.write_map_begin(ktype, vtype, len(items))
        for key, val in items:
            write_value(writer, key)
            write_value(writer, val)
    else:  # pragma: no cover - thrift_type_of covers all branches
        raise ProtocolError(f"unhandled type {wtype}")


def read_value(reader: BinaryProtocolReader, wtype: ThriftType) -> Any:
    """Read one value of the given wire type."""
    if wtype == ThriftType.BOOL:
        return reader.read_bool()
    if wtype == ThriftType.BYTE:
        return reader.read_byte()
    if wtype == ThriftType.I16:
        return reader.read_i16()
    if wtype == ThriftType.I32:
        return reader.read_i32()
    if wtype == ThriftType.I64:
        return reader.read_i64()
    if wtype == ThriftType.DOUBLE:
        return reader.read_double()
    if wtype == ThriftType.STRING:
        return reader.read_binary()
    if wtype == ThriftType.LIST:
        etype, size = reader.read_list_begin()
        return [read_value(reader, etype) for _ in range(size)]
    if wtype == ThriftType.MAP:
        ktype, vtype, size = reader.read_map_begin()
        out = {}
        for _ in range(size):
            key = read_value(reader, ktype)
            if isinstance(key, bytes):
                key = key.decode("utf-8", errors="replace")
            out[key] = read_value(reader, vtype)
        return out
    if wtype == ThriftType.STRUCT:
        return read_struct_fields(reader)
    raise ProtocolError(f"cannot read wire type {wtype}")


def write_struct_fields(writer: BinaryProtocolWriter, fields: Dict[int, Any]) -> None:
    """Write a struct as field-id -> value pairs plus a STOP byte."""
    for fid in sorted(fields):
        value = fields[fid]
        if value is None:
            continue
        writer.write_field_begin(thrift_type_of(value), fid)
        write_value(writer, value)
    writer.write_field_stop()


def read_struct_fields(reader: BinaryProtocolReader) -> Dict[int, Any]:
    """Read struct fields until STOP; returns field-id -> value."""
    out: Dict[int, Any] = {}
    while True:
        ftype, fid = reader.read_field_begin()
        if ftype == ThriftType.STOP:
            return out
        out[fid] = read_value(reader, ftype)


def encode_message(
    name: str,
    payload: Dict[int, Any],
    seqid: int = 0,
    mtype: MessageType = MessageType.CALL,
) -> bytes:
    """Encode a full RPC message: envelope + argument struct."""
    writer = BinaryProtocolWriter()
    writer.write_message_begin(name, mtype, seqid)
    write_struct_fields(writer, payload)
    return writer.getvalue()


def decode_message(data: bytes) -> Tuple[str, MessageType, int, Dict[int, Any]]:
    """Decode a full RPC message; returns (name, type, seqid, fields)."""
    reader = BinaryProtocolReader(data)
    name, mtype, seqid = reader.read_message_begin()
    fields = read_struct_fields(reader)
    return name, mtype, seqid, fields
