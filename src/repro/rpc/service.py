"""RPC client and server over framed binary protocol.

A :class:`RpcServer` registers named handlers; a :class:`RpcClient`
issues calls through an :class:`InMemoryChannel`.  The pair runs the
complete wire path — encode, frame, deframe, decode, dispatch, and the
reply path — so tests and microbenchmarks exercise the same code a
Thrift service would.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.rpc.compact import decode_compact_message, encode_compact_message
from repro.rpc.protocol import (
    MessageType,
    decode_message,
    encode_message,
)
from repro.rpc.transport import FramedTransport, InMemoryChannel


def _codec(protocol: str):
    """Resolve (encode, decode) for a named wire protocol."""
    if protocol == "binary":
        return (
            lambda name, fields, seqid, mtype: encode_message(
                name, fields, seqid=seqid, mtype=mtype
            ),
            decode_message,
        )
    if protocol == "compact":
        return (
            lambda name, fields, seqid, mtype: encode_compact_message(
                name, fields, seqid=seqid, mtype=int(mtype)
            ),
            lambda data: (lambda n, t, s, f: (n, MessageType(t), s, f))(
                *decode_compact_message(data)
            ),
        )
    raise ValueError(f"unknown protocol {protocol!r}; use 'binary' or 'compact'")

#: A handler takes the request fields dict, returns the reply fields dict.
ServiceHandler = Callable[[Dict[int, Any]], Dict[int, Any]]


class RpcError(Exception):
    """Raised on the client when the server returns an exception reply."""


class RpcServer:
    """Dispatches framed CALL messages to registered handlers."""

    def __init__(self, channel: InMemoryChannel, protocol: str = "binary") -> None:
        self.channel = channel
        self.protocol = protocol
        self._encode, self._decode = _codec(protocol)
        self._handlers: Dict[str, ServiceHandler] = {}
        self._transport = FramedTransport()
        self.calls_served = 0
        self.bytes_in = 0
        self.bytes_out = 0

    def register(self, method: str, handler: ServiceHandler) -> None:
        if method in self._handlers:
            raise ValueError(f"handler already registered for {method!r}")
        self._handlers[method] = handler

    def poll(self) -> int:
        """Serve every pending request; returns the number served."""
        served = 0
        while True:
            chunk = self.channel.recv_b()
            if chunk is None:
                break
            self._transport.feed(chunk)
            self.bytes_in += len(chunk)
        while True:
            frame = self._transport.next_frame()
            if frame is None:
                break
            self._serve_frame(frame)
            served += 1
        return served

    def _serve_frame(self, frame: bytes) -> None:
        name, mtype, seqid, fields = self._decode(frame)
        if mtype not in (MessageType.CALL, MessageType.ONEWAY):
            return
        handler = self._handlers.get(name)
        if handler is None:
            reply = self._encode(
                name,
                {1: f"no handler for method {name!r}"},
                seqid,
                MessageType.EXCEPTION,
            )
        else:
            try:
                result = handler(fields)
                reply = self._encode(name, result, seqid, MessageType.REPLY)
            except Exception as exc:  # handler errors travel as EXCEPTION
                reply = self._encode(
                    name, {1: str(exc)}, seqid, MessageType.EXCEPTION
                )
        if mtype == MessageType.CALL:
            framed = FramedTransport.frame(reply)
            self.channel.send_b(framed)
            self.bytes_out += len(framed)
        self.calls_served += 1


class RpcClient:
    """Issues calls and reads replies over the channel."""

    def __init__(
        self,
        channel: InMemoryChannel,
        server: RpcServer,
        protocol: str = "binary",
    ) -> None:
        if protocol != server.protocol:
            raise ValueError(
                f"client protocol {protocol!r} does not match the server's "
                f"{server.protocol!r}"
            )
        self.channel = channel
        self.protocol = protocol
        self._encode, self._decode = _codec(protocol)
        self._server = server
        self._transport = FramedTransport()
        self._seqid = 0
        self.bytes_out = 0

    def call(self, method: str, args: Dict[int, Any]) -> Dict[int, Any]:
        """Synchronous request/response round trip.

        The server is polled inline (single-threaded test harness); the
        full wire path still runs.
        """
        self._seqid += 1
        request = FramedTransport.frame(
            self._encode(method, args, self._seqid, MessageType.CALL)
        )
        self.channel.send_a(request)
        self.bytes_out += len(request)
        self._server.poll()
        while True:
            chunk = self.channel.recv_a()
            if chunk is None:
                raise RpcError(f"no reply received for {method!r}")
            self._transport.feed(chunk)
            frame = self._transport.next_frame()
            if frame is None:
                continue
            name, mtype, seqid, fields = self._decode(frame)
            if seqid != self._seqid:
                raise RpcError(
                    f"out-of-order reply: expected seqid {self._seqid}, got {seqid}"
                )
            if mtype == MessageType.EXCEPTION:
                raise RpcError(str(fields.get(1, b"unknown error")))
            return fields

    def call_oneway(self, method: str, args: Dict[int, Any]) -> None:
        """Fire-and-forget call (no reply expected)."""
        self._seqid += 1
        request = FramedTransport.frame(
            self._encode(method, args, self._seqid, MessageType.ONEWAY)
        )
        self.channel.send_a(request)
        self.bytes_out += len(request)
        self._server.poll()
