"""Framed transport and in-memory channels.

Thrift's framed transport prefixes every message with a 4-byte length.
:class:`FramedTransport` implements framing/deframing over any byte
channel; :class:`InMemoryChannel` is the loopback channel used by unit
tests and the datacenter-tax microbenchmarks.
"""

from __future__ import annotations

import struct
from collections import deque
from typing import Deque, Optional


class TransportError(Exception):
    """Raised on framing violations."""


#: Refuse frames beyond this size (matches common Thrift server limits).
MAX_FRAME_BYTES = 64 * 1024 * 1024


class InMemoryChannel:
    """A bidirectional pair of byte queues (client end + server end)."""

    def __init__(self) -> None:
        self._a_to_b: Deque[bytes] = deque()
        self._b_to_a: Deque[bytes] = deque()
        self.bytes_sent_a = 0
        self.bytes_sent_b = 0

    def send_a(self, data: bytes) -> None:
        self._a_to_b.append(data)
        self.bytes_sent_a += len(data)

    def send_b(self, data: bytes) -> None:
        self._b_to_a.append(data)
        self.bytes_sent_b += len(data)

    def recv_a(self) -> Optional[bytes]:
        """Bytes sent by B, or None when empty."""
        return self._b_to_a.popleft() if self._b_to_a else None

    def recv_b(self) -> Optional[bytes]:
        """Bytes sent by A, or None when empty."""
        return self._a_to_b.popleft() if self._a_to_b else None


class FramedTransport:
    """Length-prefixed framing over a stream of byte chunks."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    @staticmethod
    def frame(payload: bytes) -> bytes:
        """Wrap a payload with a 4-byte big-endian length prefix."""
        if len(payload) > MAX_FRAME_BYTES:
            raise TransportError(
                f"frame of {len(payload)} bytes exceeds max {MAX_FRAME_BYTES}"
            )
        return struct.pack("!I", len(payload)) + payload

    def feed(self, chunk: bytes) -> None:
        """Append received bytes to the reassembly buffer."""
        self._buffer.extend(chunk)

    def next_frame(self) -> Optional[bytes]:
        """Pop one complete frame, or None if more bytes are needed."""
        if len(self._buffer) < 4:
            return None
        (length,) = struct.unpack("!I", bytes(self._buffer[:4]))
        if length > MAX_FRAME_BYTES:
            raise TransportError(f"advertised frame of {length} bytes is too large")
        if len(self._buffer) < 4 + length:
            return None
        frame = bytes(self._buffer[4 : 4 + length])
        del self._buffer[: 4 + length]
        return frame

    @property
    def buffered_bytes(self) -> int:
        return len(self._buffer)
