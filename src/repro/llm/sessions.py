"""Deterministic multi-turn session generation for llmbench.

Every session draws all of its randomness — prefix-group membership,
turn count, per-turn prompt/output lengths, think times — from its own
derived RNG stream, seeded by ``(master seed, session id)`` exactly the
way :class:`repro.sim.rng.RngStreams` derives named streams.  Two
consequences the tests pin:

* **Draw-order determinism**: a session's plan depends only on the
  master seed and its id, never on how many other sessions were planned
  before it or in what batch sizes the caller asked for plans.
* **Seed-split independence**: concurrent sessions consume disjoint
  streams, so changing one session's parameters never perturbs
  another's draws.

Shared-prefix lengths are drawn once per prefix group from the group's
own stream and memoized, so every member of a group agrees on the
prefix length regardless of which member touched it first.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.llm.catalog import LlmMix
from repro.sim.rng import LognormalSampler, RngStreams, lognormal_sampler

#: Length clamps: keep pathological lognormal tails inside the range a
#: real serving stack would accept.
MIN_PROMPT_TOKENS = 8
MAX_PROMPT_TOKENS = 16_384
MIN_OUTPUT_TOKENS = 4
MAX_OUTPUT_TOKENS = 8_192


@dataclass(frozen=True)
class Turn:
    """One request/response exchange inside a session."""

    prompt_tokens: int
    output_tokens: int
    #: Shared-prefix tokens at the head of the prompt (0 = unique
    #: prompt; the engine's prefix cache can discount these).
    prefix_tokens: int

    def __post_init__(self) -> None:
        if self.prompt_tokens < 1 or self.output_tokens < 1:
            raise ValueError("turns need at least one prompt and output token")
        if not 0 <= self.prefix_tokens < self.prompt_tokens:
            raise ValueError("prefix_tokens must be in [0, prompt_tokens)")


@dataclass(frozen=True)
class SessionPlan:
    """A fully materialised session: every draw made up front."""

    session_id: int
    #: Shared-prefix group this session belongs to (-1 = unique).
    prefix_group: int
    turns: Tuple[Turn, ...]
    #: Pause before each turn (index 0 is always 0.0 — the session's
    #: first turn fires at its arrival).
    think_times_s: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.turns:
            raise ValueError("a session needs at least one turn")
        if len(self.think_times_s) != len(self.turns):
            raise ValueError("one think time per turn")

    @property
    def total_prompt_tokens(self) -> int:
        return sum(turn.prompt_tokens for turn in self.turns)

    @property
    def total_output_tokens(self) -> int:
        return sum(turn.output_tokens for turn in self.turns)


class SessionGenerator:
    """Derives :class:`SessionPlan` objects from a mix and a seed space.

    ``streams`` is the workload's :class:`RngStreams` factory (already
    spawned per workload name by the harness); the generator spawns its
    own child space so session draws can never collide with arrival or
    fault streams.
    """

    def __init__(self, mix: LlmMix, streams: RngStreams) -> None:
        self.mix = mix
        self._seed = streams.spawn("llm-sessions").seed
        self._prompt: LognormalSampler = lognormal_sampler(
            mix.prompt_tokens_mean, mix.prompt_tokens_cv
        )
        self._output: LognormalSampler = lognormal_sampler(
            mix.output_tokens_mean, mix.output_tokens_cv
        )
        self._prefix: LognormalSampler = lognormal_sampler(
            mix.prefix_tokens_mean, mix.prefix_tokens_cv
        )
        self._prefix_tokens: Dict[int, int] = {}

    def _derive(self, name: str) -> random.Random:
        """A fresh stream for ``name`` — same derivation as
        :meth:`RngStreams.stream`, but unmemoized: session streams are
        consumed exactly once, so caching thousands of them would only
        cost memory."""
        digest = hashlib.sha256(f"{self._seed}:{name}".encode()).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    def prefix_tokens(self, group: int) -> int:
        """Shared-prefix length for a group (memoized, order-free)."""
        tokens = self._prefix_tokens.get(group)
        if tokens is None:
            rng = self._derive(f"prefix:{group}")
            tokens = int(
                max(
                    MIN_PROMPT_TOKENS,
                    min(MAX_PROMPT_TOKENS // 2, self._prefix.sample(rng)),
                )
            )
            self._prefix_tokens[group] = tokens
        return tokens

    def plan(self, session_id: int) -> SessionPlan:
        """Materialise session ``session_id``.

        Draw order within the session stream is fixed and documented:
        (1) prefix-group membership, (2) turn count, then per turn
        (3) prompt length, (4) output length, (5) think time.
        """
        mix = self.mix
        rng = self._derive(f"session:{session_id}")

        group = -1
        if rng.random() < mix.prefix_share:
            group = rng.randrange(mix.prefix_groups)

        turns = mix.min_turns
        while turns < mix.max_turns and rng.random() < mix.turn_continue_prob:
            turns += 1

        prefix_len = self.prefix_tokens(group) if group >= 0 else 0
        turn_list = []
        think_list = []
        for index in range(turns):
            prompt = int(
                max(
                    MIN_PROMPT_TOKENS,
                    min(MAX_PROMPT_TOKENS, self._prompt.sample(rng)),
                )
            )
            output = int(
                max(
                    MIN_OUTPUT_TOKENS,
                    min(MAX_OUTPUT_TOKENS, self._output.sample(rng)),
                )
            )
            if index == 0 or mix.think_time_mean_s <= 0:
                think = 0.0
            else:
                think = rng.expovariate(1.0 / mix.think_time_mean_s)
            turn_list.append(
                Turn(
                    prompt_tokens=prompt,
                    output_tokens=output,
                    prefix_tokens=min(prefix_len, prompt - 1),
                )
            )
            think_list.append(think)
        return SessionPlan(
            session_id=session_id,
            prefix_group=group,
            turns=tuple(turn_list),
            think_times_s=tuple(think_list),
        )
