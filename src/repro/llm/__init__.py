"""LLM token-serving models: session catalog, generators, and the
continuous-batching engine (see :mod:`repro.workloads.llmbench` for the
benchmark built on top of them)."""

from repro.llm.catalog import CATALOG, LlmMix, get_mix, mix_names
from repro.llm.engine import EngineParams, EngineStats, KvLedger, LlmReplica, Sequence
from repro.llm.sessions import SessionGenerator, SessionPlan, Turn

__all__ = [
    "CATALOG",
    "LlmMix",
    "get_mix",
    "mix_names",
    "EngineParams",
    "EngineStats",
    "KvLedger",
    "LlmReplica",
    "Sequence",
    "SessionGenerator",
    "SessionPlan",
    "Turn",
]
