"""The llmbench scenario catalog: named token-serving mixes.

Each mix is a small, frozen parameterisation of the session model —
length distributions, turn structure, and prefix sharing — in the style
of dwarf-based scalable benchmarking: a handful of workload "units"
whose composition covers the representative shapes of production LLM
serving.  Lengths are lognormal (mean, cv) pairs drawn through the
memoized :func:`repro.sim.rng.lognormal_sampler`, matching how every
other workload model in the repo parameterises heavy-tailed sizes.

The four mixes:

* ``chat`` — interactive assistant traffic: medium prompts, short
  replies, several turns per session, heavy system-prompt sharing.
* ``codegen`` — IDE completion/refactor traffic: long prompts (file
  context), medium replies, a couple of turns, shared repo preambles.
* ``rag_summarize`` — retrieval-augmented summarisation: very long
  stuffed-context prompts, short replies, mostly single-turn.
* ``long_reasoning`` — chain-of-thought heavy traffic: modest prompts
  but very long generations, which is what fills the KV-cache ledger
  and forces the engine's evict/queue behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class LlmMix:
    """One named serving mix: session shape + sharing structure.

    ``turn_continue_prob`` is the per-turn probability a session keeps
    going after ``min_turns``, capped at ``max_turns`` (a truncated
    geometric — short sessions common, long tails bounded).
    ``prefix_share`` is the fraction of sessions that carry one of
    ``prefix_groups`` shared prefixes (system prompts, repo preambles)
    at the head of every turn's prompt, which is what gives the
    engine's prefix cache something to hit.
    """

    name: str
    description: str
    prompt_tokens_mean: float
    prompt_tokens_cv: float
    output_tokens_mean: float
    output_tokens_cv: float
    min_turns: int
    max_turns: int
    turn_continue_prob: float
    think_time_mean_s: float
    prefix_share: float
    prefix_groups: int
    prefix_tokens_mean: float
    prefix_tokens_cv: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("mix name must be non-empty")
        for field_name in (
            "prompt_tokens_mean",
            "prompt_tokens_cv",
            "output_tokens_mean",
            "output_tokens_cv",
            "prefix_tokens_mean",
            "prefix_tokens_cv",
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{self.name}: {field_name} must be positive")
        if not 1 <= self.min_turns <= self.max_turns:
            raise ValueError(f"{self.name}: need 1 <= min_turns <= max_turns")
        if not 0.0 <= self.turn_continue_prob < 1.0:
            raise ValueError(f"{self.name}: turn_continue_prob must be in [0, 1)")
        if self.think_time_mean_s < 0:
            raise ValueError(f"{self.name}: think_time_mean_s must be >= 0")
        if not 0.0 <= self.prefix_share <= 1.0:
            raise ValueError(f"{self.name}: prefix_share must be in [0, 1]")
        if self.prefix_groups < 1:
            raise ValueError(f"{self.name}: prefix_groups must be >= 1")

    @property
    def expected_turns(self) -> float:
        """Mean turns per session under the truncated geometric."""
        expected = float(self.min_turns)
        survival = 1.0
        for _ in range(self.max_turns - self.min_turns):
            survival *= self.turn_continue_prob
            expected += survival
        return expected


CATALOG: Dict[str, LlmMix] = {
    mix.name: mix
    for mix in (
        LlmMix(
            name="chat",
            description=(
                "Interactive assistant: medium prompts, short replies, "
                "multi-turn sessions, shared system prompts."
            ),
            prompt_tokens_mean=512.0,
            prompt_tokens_cv=1.0,
            output_tokens_mean=192.0,
            output_tokens_cv=0.9,
            min_turns=1,
            max_turns=6,
            turn_continue_prob=0.55,
            think_time_mean_s=0.04,
            prefix_share=0.7,
            prefix_groups=8,
            prefix_tokens_mean=256.0,
            prefix_tokens_cv=0.3,
        ),
        LlmMix(
            name="codegen",
            description=(
                "IDE completion and refactoring: long file-context "
                "prompts, medium replies, shared repo preambles."
            ),
            prompt_tokens_mean=1536.0,
            prompt_tokens_cv=0.8,
            output_tokens_mean=384.0,
            output_tokens_cv=1.1,
            min_turns=1,
            max_turns=4,
            turn_continue_prob=0.45,
            think_time_mean_s=0.02,
            prefix_share=0.5,
            prefix_groups=4,
            prefix_tokens_mean=512.0,
            prefix_tokens_cv=0.25,
        ),
        LlmMix(
            name="rag_summarize",
            description=(
                "Retrieval-augmented summarisation: very long stuffed "
                "contexts, short replies, mostly single-turn."
            ),
            prompt_tokens_mean=3072.0,
            prompt_tokens_cv=0.5,
            output_tokens_mean=256.0,
            output_tokens_cv=0.6,
            min_turns=1,
            max_turns=2,
            turn_continue_prob=0.2,
            think_time_mean_s=0.0,
            prefix_share=0.35,
            prefix_groups=6,
            prefix_tokens_mean=768.0,
            prefix_tokens_cv=0.2,
        ),
        LlmMix(
            name="long_reasoning",
            description=(
                "Chain-of-thought heavy traffic: modest prompts, very "
                "long generations that pressure the KV-cache budget."
            ),
            prompt_tokens_mean=768.0,
            prompt_tokens_cv=0.7,
            output_tokens_mean=1536.0,
            output_tokens_cv=0.8,
            min_turns=1,
            max_turns=3,
            turn_continue_prob=0.35,
            think_time_mean_s=0.0,
            prefix_share=0.6,
            prefix_groups=4,
            prefix_tokens_mean=384.0,
            prefix_tokens_cv=0.3,
        ),
    )
}


def mix_names() -> Tuple[str, ...]:
    """Registered mix names, sorted for stable CLI help and digests."""
    return tuple(sorted(CATALOG))


def get_mix(name: str) -> LlmMix:
    """Look up a mix by name, with a helpful error."""
    try:
        return CATALOG[name]
    except KeyError:
        known = ", ".join(mix_names())
        raise KeyError(
            f"unknown llm mix {name!r}; known mixes: {known}"
        ) from None
