"""Continuous-batching token-serving engine model.

One :class:`LlmReplica` is a serving instance (a model replica plus the
host threads driving it) running the standard continuous-batching loop:

* **Admission** — queued sequences join the running batch whenever a
  slot *and* enough KV-cache budget for their current context exist;
  otherwise they wait in arrival order.
* **Prefill** — newly admitted sequences pay a compute-bound cost
  proportional to their *uncached* prompt tokens (a prefix-cache hit
  discounts the shared head), charged in one burst through the
  harness's CPU scheduler.
* **Decode** — every resident sequence advances one token per engine
  step.  Decode is memory-bandwidth-bound, so a step's cost grows
  *sublinearly* with batch size: the weight streaming that dominates a
  step is shared by all resident sequences, which is exactly why
  continuous batching wins (``1 + eff * (n - 1)`` for ``n`` residents,
  against ``n`` for unbatched decode).
* **KV ledger** — each decoded token appends one KV-cache entry; when
  the replica's HBM budget is exhausted the youngest resident sequence
  is preempted (its KV freed, its context re-prefilled on resume),
  matching vLLM-style recompute preemption.

Everything is deterministic given the harness seed: sequence order is
submission order, victim selection is by sequence id, and the only
randomness (session shapes) happens upstream in
:mod:`repro.llm.sessions`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Generator, List, Optional

from repro.llm.catalog import LlmMix
from repro.sim.engine import Event

#: Serving-model cost constants.  These are *simulation-unit* costs
#: (instructions charged to the simulated host CPU per token) chosen so
#: a default run completes a few thousand turns in a couple of sim
#: seconds — the same scaled-down-but-mechanistically-faithful sizing
#: the storage and cache models use.
PREFILL_INSTR_PER_TOKEN = 9_000.0
DECODE_INSTR_PER_TOKEN = 133_000.0
#: Marginal step cost of one more resident sequence (the batched share
#: of weight streaming): step = base * (1 + eff * (n - 1)).
DECODE_BATCH_EFFICIENCY = 0.25
#: KV-cache bytes appended per resident token (fp16 K+V across layers
#: for a mid-size model).
KV_BYTES_PER_TOKEN = 160_000.0
#: Per-replica HBM budget available to the KV cache.
KV_BUDGET_BYTES = 2.0e9
#: Continuous-batching slots per replica.
MAX_BATCH_SLOTS = 12
#: Prefix-cache capacity, in distinct shared prefixes per replica.
PREFIX_CACHE_ENTRIES = 32


@dataclass(frozen=True)
class EngineParams:
    """Tunable serving-engine parameters (one instance per run)."""

    max_batch_slots: int = MAX_BATCH_SLOTS
    kv_budget_bytes: float = KV_BUDGET_BYTES
    kv_bytes_per_token: float = KV_BYTES_PER_TOKEN
    prefill_instr_per_token: float = PREFILL_INSTR_PER_TOKEN
    decode_instr_per_token: float = DECODE_INSTR_PER_TOKEN
    decode_batch_efficiency: float = DECODE_BATCH_EFFICIENCY
    prefix_cache_entries: int = PREFIX_CACHE_ENTRIES

    def __post_init__(self) -> None:
        if self.max_batch_slots < 1:
            raise ValueError("max_batch_slots must be >= 1")
        if self.kv_budget_bytes <= 0 or self.kv_bytes_per_token <= 0:
            raise ValueError("KV budget and bytes-per-token must be positive")
        if self.prefill_instr_per_token <= 0 or self.decode_instr_per_token <= 0:
            raise ValueError("per-token instruction costs must be positive")
        if not 0.0 <= self.decode_batch_efficiency <= 1.0:
            raise ValueError("decode_batch_efficiency must be in [0, 1]")
        if self.prefix_cache_entries < 1:
            raise ValueError("prefix_cache_entries must be >= 1")

    @property
    def kv_budget_tokens(self) -> int:
        return int(self.kv_budget_bytes / self.kv_bytes_per_token)

    def decode_step_instructions(self, residents: int) -> float:
        """Cost of one engine step with ``residents`` sequences."""
        if residents < 1:
            return 0.0
        return self.decode_instr_per_token * (
            1.0 + self.decode_batch_efficiency * (residents - 1)
        )


def expected_turn_instructions(mix: LlmMix, params: EngineParams) -> float:
    """Analytic mean instructions one turn costs the engine.

    Used to size offered load against replica capacity: prefill pays
    for the mean uncached prompt (shared prefixes discounted at their
    share), decode pays the *batched* per-token rate at full slots.
    """
    cached = mix.prefix_share * min(
        mix.prefix_tokens_mean, mix.prompt_tokens_mean
    )
    prefill = (mix.prompt_tokens_mean - cached) * params.prefill_instr_per_token
    per_token = params.decode_step_instructions(params.max_batch_slots) / (
        params.max_batch_slots
    )
    decode = mix.output_tokens_mean * per_token
    return prefill + decode


class KvLedger:
    """Token-granular KV-cache accounting against an HBM budget."""

    __slots__ = (
        "budget_tokens",
        "bytes_per_token",
        "resident_tokens",
        "peak_tokens",
        "overflow_tokens",
    )

    def __init__(self, budget_tokens: int, bytes_per_token: float) -> None:
        if budget_tokens < 1:
            raise ValueError("budget_tokens must be >= 1")
        self.budget_tokens = budget_tokens
        self.bytes_per_token = bytes_per_token
        self.resident_tokens = 0
        self.peak_tokens = 0
        #: Tokens force-admitted past the budget (a lone sequence whose
        #: context alone exceeds HBM must still make progress).
        self.overflow_tokens = 0

    def try_reserve(self, tokens: int) -> bool:
        if self.resident_tokens + tokens > self.budget_tokens:
            return False
        self.resident_tokens += tokens
        if self.resident_tokens > self.peak_tokens:
            self.peak_tokens = self.resident_tokens
        return True

    def force_reserve(self, tokens: int) -> None:
        overflow = max(0, self.resident_tokens + tokens - self.budget_tokens)
        self.overflow_tokens += overflow
        self.resident_tokens += tokens
        if self.resident_tokens > self.peak_tokens:
            self.peak_tokens = self.resident_tokens

    def release(self, tokens: int) -> None:
        if tokens > self.resident_tokens:
            raise ValueError("releasing more KV tokens than resident")
        self.resident_tokens -= tokens

    @property
    def peak_bytes(self) -> float:
        return self.peak_tokens * self.bytes_per_token


class Sequence:
    """One turn travelling through a replica."""

    __slots__ = (
        "seq_id",
        "prompt_tokens",
        "prefix_group",
        "prefix_tokens",
        "target_tokens",
        "submitted_at",
        "first_token_at",
        "last_token_at",
        "preempted_at",
        "decoded",
        "kv_tokens",
        "needs_prefill",
        "preemptions",
        "done",
    )

    def __init__(
        self,
        seq_id: int,
        prompt_tokens: int,
        output_tokens: int,
        prefix_group: int = -1,
        prefix_tokens: int = 0,
    ) -> None:
        if prompt_tokens < 1 or output_tokens < 1:
            raise ValueError("sequences need prompt and output tokens")
        self.seq_id = seq_id
        self.prompt_tokens = prompt_tokens
        self.prefix_group = prefix_group
        self.prefix_tokens = prefix_tokens
        self.target_tokens = output_tokens
        self.submitted_at = 0.0
        self.first_token_at: Optional[float] = None
        self.last_token_at = 0.0
        self.preempted_at: Optional[float] = None
        self.decoded = 0
        self.kv_tokens = 0
        self.needs_prefill = True
        self.preemptions = 0
        self.done: Optional[Event] = None

    @property
    def context_tokens(self) -> int:
        """Tokens that must be (re-)prefilled: prompt + decoded so far."""
        return self.prompt_tokens + self.decoded


@dataclass
class EngineStats:
    """Counters one replica accumulates (reset at the warmup edge)."""

    steps: int = 0
    completions: int = 0
    prefill_tokens: int = 0
    cached_prefix_tokens: int = 0
    decoded_tokens: int = 0
    preemptions: int = 0
    admission_blocked_steps: int = 0
    max_queue_depth: int = 0
    prefix_lookups: int = 0
    prefix_hits: int = 0

    def reset(self) -> None:
        self.steps = 0
        self.completions = 0
        self.prefill_tokens = 0
        self.cached_prefix_tokens = 0
        self.decoded_tokens = 0
        self.preemptions = 0
        self.admission_blocked_steps = 0
        self.max_queue_depth = 0
        self.prefix_lookups = 0
        self.prefix_hits = 0

    def merge_from(self, other: "EngineStats") -> None:
        self.steps += other.steps
        self.completions += other.completions
        self.prefill_tokens += other.prefill_tokens
        self.cached_prefix_tokens += other.cached_prefix_tokens
        self.decoded_tokens += other.decoded_tokens
        self.preemptions += other.preemptions
        self.admission_blocked_steps += other.admission_blocked_steps
        self.max_queue_depth = max(self.max_queue_depth, other.max_queue_depth)
        self.prefix_lookups += other.prefix_lookups
        self.prefix_hits += other.prefix_hits


class _PrefixCache:
    """Tiny LRU of shared-prefix group ids (per replica)."""

    __slots__ = ("capacity", "_entries")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        # Dicts preserve insertion order; re-inserting refreshes recency.
        self._entries: Dict[int, None] = {}

    def lookup(self, group: int) -> bool:
        if group in self._entries:
            del self._entries[group]
            self._entries[group] = None
            return True
        if len(self._entries) >= self.capacity:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        self._entries[group] = None
        return False


class LlmReplica:
    """One serving instance running the continuous-batching loop."""

    def __init__(
        self,
        harness,
        params: EngineParams,
        stats: Optional[EngineStats] = None,
        on_first_token: Optional[Callable[[Sequence, float], None]] = None,
        on_token: Optional[Callable[[Sequence, float], None]] = None,
        on_preempt_resume: Optional[Callable[[Sequence, float], None]] = None,
    ) -> None:
        self.harness = harness
        self.env = harness.env
        self.params = params
        self.stats = stats if stats is not None else EngineStats()
        self.kv = KvLedger(params.kv_budget_tokens, params.kv_bytes_per_token)
        self.pending: Deque[Sequence] = deque()
        self.active: List[Sequence] = []
        self._prefix_cache = _PrefixCache(params.prefix_cache_entries)
        self._wake: Optional[Event] = None
        #: ``on_first_token(seq, ttft_seconds)`` — TTFT observation;
        #: ``on_token(seq, gap_seconds)`` — inter-token latency;
        #: ``on_preempt_resume(seq, stall_seconds)`` — time the
        #: sequence spent evicted from the batch.
        self.on_first_token = on_first_token
        self.on_token = on_token
        self.on_preempt_resume = on_preempt_resume
        self.env.process(self._loop())

    # --- client API -----------------------------------------------------------
    def submit(self, seq: Sequence) -> Event:
        """Queue a sequence; the returned event fires at its last token."""
        seq.submitted_at = self.env.now
        seq.done = Event(self.env)
        self.pending.append(seq)
        if len(self.pending) > self.stats.max_queue_depth:
            self.stats.max_queue_depth = len(self.pending)
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()
        return seq.done

    @property
    def resident(self) -> int:
        return len(self.active)

    # --- engine loop ----------------------------------------------------------
    def _admit(self) -> None:
        """Move queued sequences into free slots while KV budget allows."""
        while self.pending and len(self.active) < self.params.max_batch_slots:
            seq = self.pending[0]
            need = seq.context_tokens
            if not self.kv.try_reserve(need):
                if not self.active:
                    # A lone oversized context must still run: admit it
                    # past the budget rather than deadlock the replica.
                    self.kv.force_reserve(need)
                else:
                    self.stats.admission_blocked_steps += 1
                    break
            self.pending.popleft()
            seq.kv_tokens = need
            seq.needs_prefill = True
            if seq.preempted_at is not None:
                if self.on_preempt_resume is not None:
                    self.on_preempt_resume(seq, self.env.now - seq.preempted_at)
                seq.preempted_at = None
            self.active.append(seq)

    def _prefill_discount(self, seq: Sequence) -> int:
        """Uncharged prompt tokens thanks to the prefix cache."""
        if seq.prefix_group < 0 or seq.prefix_tokens <= 0:
            return 0
        self.stats.prefix_lookups += 1
        if self._prefix_cache.lookup(seq.prefix_group):
            self.stats.prefix_hits += 1
            return seq.prefix_tokens
        return 0

    def _preempt(self, victim: Sequence) -> None:
        """Evict ``victim`` back to the queue, freeing its KV."""
        self.active.remove(victim)
        self.kv.release(victim.kv_tokens)
        victim.kv_tokens = 0
        victim.needs_prefill = True
        victim.preemptions += 1
        victim.preempted_at = self.env.now
        self.stats.preemptions += 1
        self.pending.append(victim)

    def _grow_kv(self, seq: Sequence) -> bool:
        """Reserve one more KV token for ``seq``, preempting if needed.

        Returns False when ``seq`` itself was the preemption victim
        (it lost its slot and decodes no token this step).
        """
        while not self.kv.try_reserve(1):
            # Youngest resident loses its KV first (recompute
            # preemption); deterministic via monotonic sequence ids.
            victim = max(self.active, key=lambda s: s.seq_id)
            if victim is seq:
                if len(self.active) == 1:
                    # Nothing left to evict: overflow rather than stall
                    # forever.
                    self.kv.force_reserve(1)
                    seq.kv_tokens += 1
                    return True
                self._preempt(seq)
                return False
            self._preempt(victim)
        seq.kv_tokens += 1
        return True

    def _loop(self) -> Generator:
        env = self.env
        params = self.params
        stats = self.stats
        while True:
            if not self.active and not self.pending:
                self._wake = Event(env)
                yield self._wake
                self._wake = None
            self._admit()
            fresh = [s for s in self.active if s.needs_prefill]
            if fresh:
                instructions = 0.0
                for seq in fresh:
                    tokens = seq.context_tokens
                    cached = self._prefill_discount(seq)
                    instructions += (tokens - cached) * (
                        params.prefill_instr_per_token
                    )
                    stats.prefill_tokens += tokens
                    stats.cached_prefix_tokens += cached
                    seq.needs_prefill = False
                if instructions > 0:
                    yield from self.harness.burst(instructions)
            if not self.active:
                continue
            yield from self.harness.burst(
                params.decode_step_instructions(len(self.active))
            )
            stats.steps += 1
            now = env.now
            for seq in list(self.active):
                if seq.needs_prefill:
                    continue  # preempted by an earlier sequence's growth
                if not self._grow_kv(seq):
                    continue
                seq.decoded += 1
                stats.decoded_tokens += 1
                if seq.first_token_at is None:
                    seq.first_token_at = now
                    if self.on_first_token is not None:
                        self.on_first_token(seq, now - seq.submitted_at)
                elif self.on_token is not None:
                    self.on_token(seq, now - seq.last_token_at)
                seq.last_token_at = now
                if seq.decoded >= seq.target_tokens:
                    self.active.remove(seq)
                    self.kv.release(seq.kv_tokens)
                    seq.kv_tokens = 0
                    stats.completions += 1
                    assert seq.done is not None
                    seq.done.succeed()
