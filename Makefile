PYTHON ?= python

.PHONY: test verify bench bench-workloads bench-sweep bench-storage bench-llm bench-shard bench-schedule profile report clean-cache

# Fast path: just the unit suite.
test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Tier-1 gate: unit suite + a 2-point parallel smoke sweep + a
# fault-scenario replay check, with the run cache isolated in a temp
# directory (see tools/ci.sh).
verify:
	sh tools/ci.sh

# Engine hot-path microbenchmarks plus the end-to-end workload bench
# (see BENCH_engine.json / BENCH_workloads.json for recorded numbers).
bench:
	PYTHONPATH=src $(PYTHON) tools/bench_engine.py --quick
	PYTHONPATH=src $(PYTHON) tools/bench_workloads.py --smoke
	PYTHONPATH=src $(PYTHON) tools/bench_storage.py --smoke
	PYTHONPATH=src $(PYTHON) tools/bench_llm.py --smoke

# Full end-to-end workload wall-clock bench (writes BENCH_workloads.json).
bench-workloads:
	PYTHONPATH=src $(PYTHON) tools/bench_workloads.py

# End-to-end sweep benchmark (cold vs warm cache, serial vs pooled).
bench-sweep:
	PYTHONPATH=src $(PYTHON) tools/bench_sweep.py

# Storage-subsystem microbenchmarks (writes BENCH_storage.json).
bench-storage:
	PYTHONPATH=src $(PYTHON) tools/bench_storage.py

# LLM token-serving microbenchmarks: tokens/s and TTFT across the
# catalog mixes (writes BENCH_llm.json).
bench-llm:
	PYTHONPATH=src $(PYTHON) tools/bench_llm.py

# Intra-run shard scaling curve (writes BENCH_shard.json).
bench-shard:
	PYTHONPATH=src $(PYTHON) tools/bench_shard.py

# FIFO vs LPT+stealing makespan on an imbalanced sweep, plus the
# auto-shard plan demo (writes BENCH_schedule.json).
bench-schedule:
	PYTHONPATH=src $(PYTHON) tools/bench_schedule.py

# Reproduce the cProfile that motivated the workload-model fast path.
profile:
	PYTHONPATH=src $(PYTHON) tools/bench_workloads.py --profile taobench

report:
	PYTHONPATH=src $(PYTHON) tools/generate_report.py

clean-cache:
	PYTHONPATH=src $(PYTHON) -m repro.core.cli cache clear
