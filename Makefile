PYTHON ?= python

.PHONY: test verify bench bench-sweep report clean-cache

# Fast path: just the unit suite.
test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Tier-1 gate: unit suite + a 2-point parallel smoke sweep + a
# fault-scenario replay check, with the run cache isolated in a temp
# directory (see tools/ci.sh).
verify:
	sh tools/ci.sh

# Engine hot-path microbenchmarks (short windows; see BENCH_engine.json
# for the recorded before/after numbers).
bench:
	PYTHONPATH=src $(PYTHON) tools/bench_engine.py --quick

# End-to-end sweep benchmark (cold vs warm cache, serial vs pooled).
bench-sweep:
	PYTHONPATH=src $(PYTHON) tools/bench_sweep.py

report:
	PYTHONPATH=src $(PYTHON) tools/generate_report.py

clean-cache:
	PYTHONPATH=src $(PYTHON) -m repro.core.cli cache clear
