"""SKU selection: the Section 5.1 ARM-vs-x86 procurement decision.

Runs the DCPerf suite on the incumbent x86 SKU4 and the two ARM
candidates, computes Perf/Watt normalized to the SKU1 baseline, and
prints the decision the paper describes: SKU-A wins on efficiency,
SKU-B is rejected for collapsing on web workloads — something SPEC
alone would have missed.

Run:
    python examples/sku_selection.py
"""

import math

from repro.analysis.tables import ascii_bar_chart
from repro.core.report import format_table
from repro.core.suite import DCPerfSuite
from repro.workloads.spec import spec2017_suite

CANDIDATES = ["SKU4", "SKU-A", "SKU-B"]
BENCHES = ["taobench", "feedsim", "djangobench", "mediawiki", "sparkbench"]


def main() -> None:
    suite = DCPerfSuite(measure_seconds=1.0)
    print("sweeping the suite over SKU1 + candidates (cached runs reused)...")
    reports = suite.run_many(["SKU1", *CANDIDATES])
    baseline = reports["SKU1"].perf_per_watt

    table = {}
    for sku in CANDIDATES:
        report = reports[sku]
        normalized = {b: report.perf_per_watt[b] / baseline[b] for b in BENCHES}
        normalized["dcperf"] = math.exp(
            sum(math.log(v) for v in normalized.values()) / len(normalized)
        )
        table[sku] = normalized

    spec = spec2017_suite()
    spec_base = spec.score("SKU1") / spec.average_power_watts("SKU1")
    for sku in CANDIDATES:
        table[sku]["spec2017"] = (
            spec.score(sku) / spec.average_power_watts(sku)
        ) / spec_base

    columns = BENCHES + ["dcperf", "spec2017"]
    print("\n=== Perf/Watt normalized to SKU1 (Figure 14) ===")
    print(format_table(
        ["sku"] + columns,
        [[sku] + [f"{table[sku][c]:.2f}" for c in columns] for sku in CANDIDATES],
    ))

    print("\nDCPerf suite Perf/Watt:")
    print(ascii_bar_chart({sku: table[sku]["dcperf"] for sku in CANDIDATES}))

    a, b, x86 = table["SKU-A"]["dcperf"], table["SKU-B"]["dcperf"], table["SKU4"]["dcperf"]
    print(f"\ndecision: SKU-A delivers {a / x86 - 1:+.0%} Perf/Watt vs SKU4 "
          f"-> select SKU-A")
    print(f"          SKU-B delivers {b / x86 - 1:+.0%} vs SKU4 "
          f"(web workloads collapse on its small L1I) -> reject SKU-B")
    sa, sb = table["SKU-A"]["spec2017"], table["SKU-B"]["spec2017"]
    print(f"\nnote: SPEC 2017 rates the ARM candidates {sa:.2f} vs {sb:.2f} — "
          "comparable; SPEC alone could not have rejected SKU-B.")


if __name__ == "__main__":
    main()
