"""Quickstart: install and run one DCPerf benchmark.

The three-step workflow from Section 2.1 — clone, build (install), run
— against the simulated SKU2 server, with the full monitoring hook set
attached.

Run:
    python examples/quickstart.py
"""

from repro.core.benchmark import Benchmark
from repro.core.report import format_table
from repro.workloads.base import RunConfig


def main() -> None:
    # Step 1+2: pick a benchmark and "install" it (resolves the
    # calibrated profile, prepares datasets).
    bench = Benchmark.by_name("taobench")
    description = bench.install()
    print("installed:", description["name"])
    print("  category:", description["category"])
    print("  metric:  ", description["metric"])
    print(f"  datacenter tax share: {description['tax_fraction']:.0%}")

    # Step 3: run on the most common fleet SKU, kernel 6.9.
    config = RunConfig(sku_name="SKU2", kernel_version="6.9", measure_seconds=2.0)
    report = bench.run(config)

    print(f"\n{report.metric_name}: {report.metric_value:,.0f}")
    print(f"cache hit rate: {report.result.extra['cache_hit_rate']:.1%}")
    print(f"latency p95 (batched-sim seconds): "
          f"{report.result.latency['p95']:.4f}")

    print("\nhook sections:")
    rows = []
    cpu = report.hook_sections["cpu_util"]
    rows.append(["cpu_util", f"{cpu['total_pct']:.0f}% total, "
                             f"{cpu['sys_pct']:.0f}% kernel"])
    uarch = report.hook_sections["uarch"]
    rows.append(["uarch", f"IPC {uarch['ipc_per_physical_core']:.2f}, "
                          f"L1I {uarch['l1i_mpki']:.0f} MPKI, "
                          f"{uarch['membw_gbps']:.0f} GB/s"])
    topdown = report.hook_sections["topdown"]
    rows.append(["topdown", ", ".join(f"{k} {v:.0f}%" for k, v in topdown.items())])
    power = report.hook_sections["power"]
    rows.append(["power", f"{power['watts']:.0f} W of "
                          f"{power['designed_watts']:.0f} W designed"])
    freq = report.hook_sections["cpufreq"]
    rows.append(["cpufreq", f"{freq['effective_ghz']:.2f} GHz effective"])
    print(format_table(["hook", "summary"], rows))


if __name__ == "__main__":
    main()
