"""Kernel-scalability regression hunt: the Section 5.3 case study.

TaoBench's performance on a prospective 384-thread SKU looked wrong:
only 1.6x the 176-thread SKU instead of the expected >= 2.2x.  This
script reproduces the investigation — run the benchmark across kernel
versions and core counts, localize the regression, and show the
scheduler-overhead mechanism (lock contention on ``tg->load_avg``)
behind it.

Run:
    python examples/kernel_regression_hunt.py
"""

from repro.core.report import format_table
from repro.oskernel.kernel import get_kernel
from repro.oskernel.loadavg import LoadAvgContentionModel
from repro.workloads.base import RunConfig
from repro.workloads.taobench import TaoBench


def measure(sku: str, kernel: str) -> float:
    config = RunConfig(
        sku_name=sku, kernel_version=kernel,
        warmup_seconds=0.3, measure_seconds=1.5,
        load_scale=1.5,  # saturate: we want peak RPS
    )
    return TaoBench().run(config).throughput_rps


def main() -> None:
    print("step 1: the anomaly — TaoBench peak RPS per SKU on kernel 6.4")
    rps_176_old = measure("SKU4", "6.4")
    rps_384_old = measure("SKU-384", "6.4")
    scaling_old = rps_384_old / rps_176_old
    print(f"  176-thread SKU: {rps_176_old:,.0f} rps")
    print(f"  384-thread SKU: {rps_384_old:,.0f} rps "
          f"-> {scaling_old:.2f}x (expected >= {384 / 176:.2f}x)")

    print("\nstep 2: bisect across kernel versions")
    rps_176_new = measure("SKU4", "6.9")
    rps_384_new = measure("SKU-384", "6.9")
    scaling_new = rps_384_new / rps_176_new
    print(format_table(
        ["kernel", "176-thread rps", "384-thread rps", "scaling"],
        [
            ["6.4", f"{rps_176_old:,.0f}", f"{rps_384_old:,.0f}", f"{scaling_old:.2f}x"],
            ["6.9", f"{rps_176_new:,.0f}", f"{rps_384_new:,.0f}", f"{scaling_new:.2f}x"],
        ],
    ))
    gain = rps_384_new / rps_384_old - 1.0
    print(f"  kernel 6.9 recovers {gain:+.0%} on the 384-thread SKU, "
          f"{rps_176_new / rps_176_old - 1.0:+.0%} on the 176-thread SKU")

    print("\nstep 3: the mechanism — scheduler cost per dispatch")
    rows = []
    for version in ("6.4", "6.9"):
        kernel = get_kernel(version)
        model = LoadAvgContentionModel(kernel)
        for cores in (176, 384):
            cost = model.per_event_cost_cycles(cores)
            overhead = model.solve(
                unimpeded_switch_rate=5e6, logical_cores=cores, freq_ghz=2.3
            )
            rows.append([
                version, cores, f"{cost:,.0f}",
                f"{overhead.overhead_fraction:.1%}",
            ])
    print(format_table(
        ["kernel", "cores", "cycles/dispatch", "CPU lost to scheduler"], rows
    ))
    print("\nconclusion: kernel 6.4's per-dispatch tg->load_avg update "
          "bounces one cacheline across all cores; the 6.9 rate-limit "
          "patch (commit 1528c661) removes the contention.")


if __name__ == "__main__":
    main()
