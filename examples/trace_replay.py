"""Replay production-shaped traffic through a workload (Section 2.2).

"DCPerf generates traffic patterns or uses datasets that represent
production systems" — this walkthrough synthesizes a day of web traffic
(diurnal envelope, heavy-tailed response sizes, a production endpoint
mix), compresses it 2000x in simulated time, replays it against the
MediaWiki serving stack, and plots the resulting utilization curve.

Run:
    python examples/trace_replay.py
"""

from repro.analysis.tables import ascii_bar_chart
from repro.loadgen.recorder import LatencyRecorder
from repro.loadgen.trace import TraceReplayGenerator, synthesize_production_trace
from repro.workloads.base import RunConfig
from repro.workloads.mediawiki import MediaWiki
from repro.workloads.runner import BenchmarkHarness

#: One simulated "day" of traffic, compressed 2000x (86400s -> 43s).
TIME_SCALE = 1.0 / 2000.0
BASE_RATE_RPS = 250.0


def main() -> None:
    print("synthesizing a day of production-shaped traffic...")
    trace = synthesize_production_trace(
        num_requests=12_000,
        base_rate_rps=BASE_RATE_RPS * TIME_SCALE,  # rate in trace time
        mean_request_bytes=1_800,
        mean_response_bytes=80_000,
        diurnal_amplitude=0.45,
        endpoints={"page": 0.70, "talk": 0.12, "login": 0.10, "edit": 0.08},
        seed=11,
    )
    summary = trace.size_summary()
    print(f"  {len(trace):,} requests over {trace.duration_s:,.0f}s of trace time")
    print(f"  response sizes: mean {summary['response_mean']:,.0f} B, "
          f"p99 {summary['response_p99']:,.0f} B")
    print(f"  endpoint mix: "
          + ", ".join(f"{k} {v:.0%}" for k, v in trace.endpoint_mix().items()))

    # Build the MediaWiki serving stack and feed the trace into its
    # handler instead of the Poisson generator.
    workload = MediaWiki()
    config = RunConfig(sku_name="SKU2", warmup_seconds=0.0, measure_seconds=1.0)
    harness = BenchmarkHarness(config, workload.characteristics)
    handler = workload._build_handler(harness)

    recorder = LatencyRecorder()
    # Normalize the whole trace to ~43 simulated seconds (a 2000x
    # compression of the day it represents).
    replay = TraceReplayGenerator(
        harness.env, trace, handler, recorder,
        time_scale=43.2 / trace.duration_s,
        loop=False,
    )
    # Sample utilization in coarse windows across the replayed day.
    cores = config.sku.cpu.logical_cores
    windows = []

    def sampler():
        period = 4.0
        previous = harness.scheduler.stats.busy_seconds
        while True:
            yield harness.env.timeout(period)
            busy = harness.scheduler.stats.busy_seconds
            windows.append(min(1.0, (busy - previous) / (period * cores)))
            previous = busy

    harness.env.process(sampler())
    replay.start()
    harness.env.run(until=44.0)

    print(f"\nreplayed {replay.completed:,} requests; "
          f"p95 latency {recorder.percentile(95) * 1000:.0f} ms (sim)")
    print("\nCPU utilization across the replayed day "
          "(each bar = ~2.2 trace-hours):")
    chart = {
        f"h{int(i * 2.2):02d}": util for i, util in enumerate(windows[:10])
    }
    print(ascii_bar_chart(chart, width=30, value_format="{:.0%}"))
    print("\nthe diurnal envelope survives the 2000x compression — the "
          "utilization curve follows the trace, not a Poisson flat line.")


if __name__ == "__main__":
    main()
