"""Vendor guidance: which microarchitecture knob to turn next (§5.2).

The paper's vendor used DCPerf to pick and validate ~10 optimizations
worth 38% on the Facebook web application.  This walkthrough automates
the first step of that loop: perturb each hardware knob by 25%, project
every DCPerf workload's response, and print the to-do list — then
deep-dive the cache-replacement knob the case study actually shipped.

Run:
    python examples/vendor_guidance.py
"""

from dataclasses import replace

from repro.core.report import format_table
from repro.hw.sku import get_sku
from repro.uarch.projection import ProjectionEngine
from repro.uarch.sensitivity import (
    STANDARD_KNOBS,
    sensitivity_sweep,
    top_knob_per_workload,
)
from repro.workloads.profiles import BENCHMARK_PROFILES
from repro.workloads.targets import BENCHMARK_TARGETS


def main() -> None:
    sku = get_sku("SKU2")
    workloads = {name: BENCHMARK_PROFILES[name] for name in BENCHMARK_PROFILES}
    utils = {name: BENCHMARK_TARGETS[name].cpu_util for name in workloads}

    print("sweeping every knob x workload (25% improvement each)...")
    results = sensitivity_sweep(sku, workloads, utils, factor=1.25)

    knob_names = list(STANDARD_KNOBS)
    by_pair = {(r.workload, r.knob): r.relative_gain for r in results}
    print("\n=== projected gain from a 25% improvement (%) ===")
    print(format_table(
        ["workload"] + knob_names,
        [
            [name] + [f"{by_pair[(name, knob)] * 100:+.1f}" for knob in knob_names]
            for name in workloads
        ],
    ))

    # Frequency trivially wins every row (it is a global speedup), so
    # the actionable list excludes it — post-silicon work is microcode
    # and policy, not clocks.
    actionable = [r for r in results if r.knob != "frequency"]
    print("\nvendor to-do list (top non-frequency knob per workload):")
    for name, knob in top_knob_per_workload(actionable).items():
        print(f"  {name:<16} -> {knob}")

    # Deep-dive the knob the Section 5.2 vendor actually shipped.
    print("\n=== deep dive: cache-replacement microcode (Figure 15) ===")
    improved_caches = sku.cpu.caches.with_replacement_quality(1.56)
    improved = replace(sku, cpu=replace(sku.cpu, caches=improved_caches))
    chars = BENCHMARK_PROFILES["mediawiki"]
    before = ProjectionEngine(sku).solve(chars, cpu_util=0.95)
    after = ProjectionEngine(improved).solve(chars, cpu_util=0.95)
    print(f"  L1I misses: {after.misses.l1i_mpki / before.misses.l1i_mpki - 1:+.0%}")
    print(f"  L2 misses:  {after.misses.l2_mpki / before.misses.l2_mpki - 1:+.0%}")
    print(f"  IPC:        {after.ipc_per_physical_core / before.ipc_per_physical_core - 1:+.1%}")
    print(f"  app perf:   {after.instructions_per_second / before.instructions_per_second - 1:+.1%}")
    print("\nthe case-study lesson: a 36% miss reduction is worth only a few\n"
          "percent end to end — and DCPerf predicts it, SPEC cannot see it.")


if __name__ == "__main__":
    main()
