"""Fidelity report: compare each benchmark to its production twin.

The paper's core methodology (Section 2.2, Figures 4-12): a benchmark
is only trustworthy if its microarchitecture profile matches the
production workload it models.  This script runs the comparison for
every pair and flags the worst-aligned metric — the signal the DCPerf
team uses to decide what to improve next (e.g. TaoBench's memory
bandwidth gap).

Run:
    python examples/fidelity_report.py
"""

from repro.analysis.fidelity import compare_profiles
from repro.core.report import format_table
from repro.hw.sku import get_sku
from repro.uarch.projection import ProjectionEngine
from repro.workloads.profiles import (
    BENCHMARK_PROFILES,
    BENCHMARK_TO_PRODUCTION,
    PRODUCTION_PROFILES,
)
from repro.workloads.targets import BENCHMARK_TARGETS, PRODUCTION_TARGETS


def main() -> None:
    engine = ProjectionEngine(get_sku("SKU2"))
    rows = []
    flagged = []
    for bench, prod in BENCHMARK_TO_PRODUCTION.items():
        bench_state = engine.solve(
            BENCHMARK_PROFILES[bench],
            cpu_util=BENCHMARK_TARGETS[bench].cpu_util,
        )
        prod_state = engine.solve(
            PRODUCTION_PROFILES[prod],
            cpu_util=PRODUCTION_TARGETS[prod].cpu_util,
        )
        cmp = compare_profiles(bench_state, prod_state)
        worst = cmp.worst_metric()
        rows.append([
            f"{bench} vs {prod}",
            f"{cmp.differences['ipc']:+.0%}",
            f"{cmp.differences['l1i_mpki']:+.0%}",
            f"{cmp.differences['membw']:+.0%}",
            f"{cmp.differences['freq']:+.0%}",
            f"{worst} ({cmp.differences[worst]:+.2f})",
        ])
        if not cmp.within(0.30):
            flagged.append((bench, worst, cmp.differences[worst]))

    print("=== Benchmark-vs-production fidelity on SKU2 ===")
    print(format_table(
        ["pair", "ipc", "l1i", "membw", "freq", "worst metric"], rows
    ))

    print("\nflagged for improvement (the never-ending refinement loop):")
    if not flagged:
        print("  none — every pair within 30% on every metric")
    for bench, metric, value in flagged:
        print(f"  {bench}: {metric} off by {value:+.2f} "
              "(cf. the paper flagging TaoBench's memory profile)")


if __name__ == "__main__":
    main()
