"""Procurement with Perf/Watt *and* Perf/$ (Section 2.3).

The paper: "CPU X may offer higher Perf/Watt but lower Perf/$, whereas
CPU Y may have lower Perf/Watt but higher Perf/$.  The decision depends
on business priorities."

This walkthrough measures MediaWiki (the fleet's biggest power
consumer) on three candidate SKUs, attaches a TCO model with
per-candidate prices, sizes the fleet for a demand with single-region
failover headroom, and shows how the two metrics can point at
different winners.

Run:
    python examples/procurement_tco.py
"""

from repro.analysis.capacity import (
    cheapest,
    compare_procurement,
    most_power_efficient,
)
from repro.core.report import format_table
from repro.hw.sku import get_sku
from repro.hw.tco import TcoModel, evaluate_cost_effectiveness
from repro.workloads.base import RunConfig
from repro.workloads.registry import get_workload

#: Candidate prices (USD): the efficient ARM part carries a premium,
#: the dense x86 part is the incumbent volume buy.
CANDIDATES = {
    "SKU4": TcoModel(server_price_usd=14_000.0),
    "SKU-A": TcoModel(server_price_usd=11_500.0),
    "SKU3": TcoModel(server_price_usd=7_000.0),
}
#: Fleet demand: MediaWiki requests/second across the service.
TOTAL_DEMAND_RPS = 400_000.0


def main() -> None:
    records = []
    for sku_name, tco_model in CANDIDATES.items():
        print(f"measuring mediawiki on {sku_name}...")
        result = get_workload("mediawiki").run(
            RunConfig(sku_name=sku_name, warmup_seconds=0.3, measure_seconds=1.0)
        )
        records.append(
            evaluate_cost_effectiveness(
                sku_name,
                performance=result.throughput_rps,
                average_power_w=result.power_watts,
                designed_power_w=get_sku(sku_name).designed_power_w,
                tco_model=tco_model,
            )
        )

    print("\n=== per-server economics ===")
    print(format_table(
        ["sku", "rps", "watts", "tco $/yr", "perf/W", "perf/$"],
        [
            [
                r.sku, f"{r.performance:,.0f}", f"{r.average_power_w:.0f}",
                f"{r.tco_per_year_usd:,.0f}", f"{r.perf_per_watt:.2f}",
                f"{r.perf_per_dollar:.3f}",
            ]
            for r in records
        ],
    ))

    options = compare_procurement(records, total_demand=TOTAL_DEMAND_RPS)
    print(f"\n=== fleet sizing for {TOTAL_DEMAND_RPS:,.0f} rps "
          "(3 regions, single-region failover) ===")
    print(format_table(
        ["sku", "servers", "fleet MW", "fleet $M/yr"],
        [
            [
                o.sku, o.servers, f"{o.fleet_power_w / 1e6:.2f}",
                f"{o.fleet_tco_per_year_usd / 1e6:.2f}",
            ]
            for o in options.values()
        ],
    ))

    watt_winner = most_power_efficient(options)
    dollar_winner = cheapest(options)
    print(f"\nPerf/Watt winner: {watt_winner}   Perf/$ winner: {dollar_winner}")
    if watt_winner != dollar_winner:
        print("the metrics disagree — the Section 2.3 trade-off: pick "
              f"{watt_winner} if datacenter power is the binding constraint "
              f"(it frees watts for AI capacity), {dollar_winner} if budget is.")
    else:
        print("both metrics agree here; the paper notes they often do not.")


if __name__ == "__main__":
    main()
