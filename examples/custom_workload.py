"""Calibrate DCPerf to *your* workload (the Section 6 generalization).

"If other organizations wish to have DCPerf represent their own
workload characteristics, it is possible with some effort to change
benchmark configurations to match their workloads."

This script shows that workflow: take a PMU profile of a hypothetical
search-engine frontend (the kind of workload the paper hopes industry
peers will contribute), invert it into a characteristics vector with
the calibrator, verify the round trip, and project the workload onto
every modeled SKU to pick hardware for it.

Run:
    python examples/custom_workload.py
"""

from repro.core.report import format_table
from repro.hw.sku import get_sku, list_skus
from repro.uarch.calibrate import (
    FidelityTargets,
    StructuralParams,
    calibrate,
    verify_roundtrip,
)
from repro.uarch.projection import ProjectionEngine


def main() -> None:
    # Step 1: your workload's measured profile on the reference SKU2
    # (one column of the paper's Figures 4-11, from your own PMU data).
    targets = FidelityTargets(
        name="search-frontend",
        category="web",
        frontend=0.34, bad_speculation=0.08, backend=0.26, retiring=0.32,
        l1i_mpki=27.0,
        membw_gbps=24.0,
        cpu_util=0.88,
        sys_util=0.09,
        freq_ghz=1.95,
        ipc=1.3,
    )
    # Step 2: structure the PMU cannot see — from your deployment.
    structure = StructuralParams(
        instructions_per_request=3.0e8,
        thread_core_ratio=50,
        rpc_fanout=40,
        switches_per_kinstr=0.03,
        network_bytes_per_request=30_000,
        tax_shares={
            "app:query_serving": 0.45,
            "app:index_lookup": 0.15,
            "rpc": 0.14,
            "compression": 0.08,
            "serialization": 0.08,
            "memory": 0.06,
            "others": 0.04,
        },
    )

    # Step 3: invert the model and prove the calibration is faithful.
    chars = calibrate(targets, structure)
    errors = verify_roundtrip(targets, chars)
    print("calibrated characteristics for", chars.name)
    print(f"  code footprint: {chars.code_footprint_kb:.0f} KB")
    print(f"  data reuse scale: {chars.data_reuse_kb:.2f} KB "
          f"(beta {chars.locality_beta})")
    print(f"  kernel share: {chars.kernel_frac:.0%}, "
          f"tax share: {chars.tax_profile.tax_fraction:.0%}")
    print("  round-trip errors:",
          ", ".join(f"{k}={v:.3f}" for k, v in errors.items()))

    # Step 4: project the workload across every SKU you could buy.
    rows = []
    for sku in list_skus():
        state = ProjectionEngine(sku).solve(chars, cpu_util=targets.cpu_util)
        rows.append([
            sku.name,
            f"{state.requests_per_second:,.0f}",
            f"{state.ipc_per_physical_core:.2f}",
            f"{state.power_watts:.0f}",
            f"{state.requests_per_second / state.power_watts:,.1f}",
        ])
    print("\n=== search-frontend projected across the SKU catalog ===")
    print(format_table(["sku", "req/s", "ipc", "watts", "req/s per W"], rows))

    best = max(
        list_skus(),
        key=lambda sku: (
            lambda s: s.requests_per_second / s.power_watts
        )(ProjectionEngine(sku).solve(chars, cpu_util=targets.cpu_util)),
    )
    print(f"\nmost power-efficient SKU for this workload: {best.name}")


if __name__ == "__main__":
    main()
